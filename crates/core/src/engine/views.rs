//! View notification machinery (paper §4): optimistic and pessimistic view
//! proxies, snapshot scheduling, guess confirmation, straggler handling.

use std::collections::{BTreeMap, BTreeSet};

use decaf_trace::TraceKind;
use decaf_vt::{SiteId, VirtualTime};

use crate::message::{Message, ObjectAddr, ReadItem};
use crate::object::ObjectName;
use crate::view::{
    OptSnap, PessSnap, SnapGuesses, UpdateNotification, View, ViewId, ViewMode, ViewProxy,
};

use super::{EngineEvent, Site};

impl Site {
    /// Attaches a view object to one or more local model objects.
    ///
    /// "When a view is attached to a model object, that view object will be
    /// able to track changes to the model object by receiving update
    /// notifications... If a view object is attached to a composite model
    /// object, it will receive notifications for changes to the composite
    /// as well as to any of its children" (§2.5).
    pub fn attach_view(
        &mut self,
        view: Box<dyn View>,
        objects: &[ObjectName],
        mode: ViewMode,
    ) -> ViewId {
        let id = ViewId(self.next_view);
        self.next_view += 1;
        let attached: BTreeSet<ObjectName> = objects.iter().copied().collect();
        let mut proxy = ViewProxy::new(id, mode, attached, view);
        // Baseline: notifications report changes *after* attachment.
        for obj in &proxy.attached {
            if let Ok(o) = self.store.get(*obj) {
                if let Some(cur) = o.values.current() {
                    proxy.last_seen.insert(*obj, cur.vt);
                }
                if let Some(c) = o.values.latest_committed() {
                    proxy.last_notified_vt = proxy.last_notified_vt.max(c.vt);
                }
            }
        }
        self.views.insert(id, proxy);
        id
    }

    /// Detaches a view; no further notifications are delivered to it.
    pub fn detach_view(&mut self, id: ViewId) {
        if let Some(proxy) = self.views.remove(&id) {
            if let Some(snap) = proxy.opt {
                self.snap_tokens.remove(&snap.token);
            }
            for (_, snap) in proxy.pess {
                self.snap_tokens.remove(&snap.token);
            }
        }
    }

    /// The views whose attachment set covers `obj` (directly or as an
    /// ancestor composite), with the attachment point that covers it.
    fn watchers_of(&self, obj: ObjectName, mode: ViewMode) -> Vec<(ViewId, ObjectName)> {
        let mut chain = vec![obj];
        chain.extend(self.store.ancestors(obj));
        let mut out = Vec::new();
        for proxy in self.views.values() {
            if proxy.mode != mode {
                continue;
            }
            if let Some(point) = chain.iter().find(|o| proxy.attached.contains(o)) {
                out.push((proxy.id, *point));
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Optimistic views (§4.1)
    // ------------------------------------------------------------------

    /// Schedules optimistic notifications after objects changed (local
    /// execution, remote update arrival, or rollback rerun).
    pub(crate) fn schedule_optimistic(&mut self, changed: &[ObjectName]) {
        let mut targets: BTreeSet<ViewId> = BTreeSet::new();
        for obj in changed {
            for (vid, point) in self.watchers_of(*obj, ViewMode::Optimistic) {
                if let Some(proxy) = self.views.get_mut(&vid) {
                    proxy.dirty.insert(point);
                }
                targets.insert(vid);
            }
        }
        for vid in targets {
            self.run_opt_snapshot(vid);
        }
    }

    /// Runs (or re-runs) the optimistic snapshot of one view: delivers the
    /// update notification immediately and registers its RC/RL guesses
    /// (§4.1 steps 1–2).
    pub(crate) fn run_opt_snapshot(&mut self, vid: ViewId) {
        // Compute ts = greatest VT of the current values of attached
        // objects (and of the triggering updates).
        let Some(proxy) = self.views.get(&vid) else {
            return;
        };
        let attached: Vec<ObjectName> = proxy.attached.iter().copied().collect();
        let mut ts = proxy.pending_ts;
        let mut read_set: Vec<ObjectName> = Vec::new();
        for a in &attached {
            for o in self.store.subtree(*a) {
                if let Some(cur) = self.store.get(o).ok().and_then(|m| m.values.current()) {
                    ts = ts.max(cur.vt);
                }
                read_set.push(o);
            }
        }
        let changed: Vec<ObjectName> = {
            let proxy = self.views.get_mut(&vid).expect("checked above");
            let dirty = std::mem::take(&mut proxy.dirty);
            proxy.pending_ts = VirtualTime::ZERO;
            dirty.into_iter().collect()
        };
        if changed.is_empty() {
            return;
        }

        // Record the snapshot's reads and guesses.
        let token = self.clock.next();
        let mut guesses = SnapGuesses::default();
        let mut reads: Vec<(ObjectName, VirtualTime)> = Vec::new();
        let mut remote_batches: BTreeMap<SiteId, Vec<ReadItem>> = BTreeMap::new();
        for o in &read_set {
            let Some(entry) = self
                .store
                .get(*o)
                .ok()
                .and_then(|m| m.values.value_at(ts).map(|e| (e.vt, e.committed)))
            else {
                continue;
            };
            reads.push((*o, entry.0));
            if !entry.1 {
                guesses.rc_waits.insert(entry.0);
            }
            if entry.0 < ts {
                // RL guess: (value VT, ts) must be update-free (§4.1).
                let Ok(primary) = self.store.primary_of(*o) else {
                    continue;
                };
                if primary.site == self.id {
                    // The local history is the primary history: value_at(ts)
                    // being the latest ≤ ts makes the interval locally
                    // clean; reserve it against future stragglers.
                    if let Ok(m) = self.store.get_mut(*o) {
                        m.value_reservations.reserve(entry.0, ts, token);
                    }
                } else {
                    let addr = self.addr_for(*o, primary.site);
                    if let Some(addr) = addr {
                        remote_batches
                            .entry(primary.site)
                            .or_default()
                            .push(ReadItem {
                                addr,
                                t_r: entry.0,
                                t_g: entry.0,
                                hi: Some(ts),
                            });
                    }
                    guesses.outstanding.insert(primary.site);
                }
            }
        }

        // Deliver the update notification (fast response first, §4.1).
        {
            let proxy = self.views.get_mut(&vid).expect("checked above");
            let notification = UpdateNotification {
                ts,
                changed: &changed,
                store: &self.store,
                spawned: Default::default(),
            };
            proxy.view.update(&notification);
            let spawned = notification.spawned.into_inner();
            proxy.last_notified_ts = Some(ts);
            proxy.last_delivered_reads = reads.clone();
            for o in &changed {
                if let Some(cur) = self.store.get(*o).ok().and_then(|m| m.values.current()) {
                    proxy.last_seen.insert(*o, cur.vt);
                }
            }
            // Discard the superseded uncommitted snapshot, if any (§4.1).
            if let Some(old) = proxy.opt.take() {
                self.snap_tokens.remove(&old.token);
            }
            proxy.opt = Some(OptSnap {
                ts,
                token,
                guesses,
                reads,
            });
            if self.config.view_ledger {
                proxy.ledger.push(crate::oracle::ViewLedgerEntry {
                    ts,
                    kind: crate::oracle::ViewLedgerKind::Update(ViewMode::Optimistic),
                });
            }
            self.stats.opt_notifications += 1;
            self.trace_emit(TraceKind::ViewOptimistic, Some(ts), None, Some(vid.0));
            self.events.push(EngineEvent::ViewUpdated {
                view: vid,
                ts,
                mode: ViewMode::Optimistic,
            });
            // Run any transactions the update method initiated.
            for t in spawned {
                self.execute(t);
            }
        }

        self.snap_tokens.insert(token, vid);
        for (site, items) in remote_batches {
            self.send(
                site,
                Message::SnapshotConfirm {
                    subject: token,
                    origin: self.id,
                    reads: items,
                },
            );
        }
        self.maybe_commit_opt(vid);
    }

    /// Commit-notifies the optimistic view if its latest snapshot settled.
    pub(crate) fn maybe_commit_opt(&mut self, vid: ViewId) {
        let ready = match self.views.get(&vid).and_then(|p| p.opt.as_ref()) {
            Some(snap) => snap.guesses.settled(),
            None => false,
        };
        if !ready {
            return;
        }
        let proxy = self.views.get_mut(&vid).expect("checked above");
        let snap = proxy.opt.take().expect("checked above");
        proxy.view.commit();
        if self.config.view_ledger {
            proxy.ledger.push(crate::oracle::ViewLedgerEntry {
                ts: snap.ts,
                kind: crate::oracle::ViewLedgerKind::Commit,
            });
        }
        self.snap_tokens.remove(&snap.token);
        self.stats.opt_commits += 1;
        self.trace_emit(TraceKind::ViewCommitted, Some(snap.ts), None, Some(vid.0));
        self.events.push(EngineEvent::ViewCommitted {
            view: vid,
            ts: snap.ts,
        });
    }

    // ------------------------------------------------------------------
    // Pessimistic views (§4.2)
    // ------------------------------------------------------------------

    /// Creates (or extends) pessimistic snapshots for the update at `vt`
    /// touching `updates` (`(object, tR)` pairs).
    ///
    /// Pessimistic proxies pre-create the snapshot as soon as the update
    /// *arrives* (even uncommitted) and pre-issue its guesses, so that by
    /// the time the commit is known the confirmations have already raced
    /// ahead (§5.1.2: "these confirmations proceed concurrently with the
    /// confirmations required for the transaction's commit").
    pub(crate) fn create_pess_snapshots(
        &mut self,
        vt: VirtualTime,
        updates: &[(ObjectName, VirtualTime)],
        committed: bool,
    ) {
        let committed =
            committed && self.mutation != Some(crate::oracle::TestMutation::DropPessCommitNotice);
        let mut touched_views: BTreeSet<ViewId> = BTreeSet::new();
        for (obj, t_r) in updates {
            for (vid, point) in self.watchers_of(*obj, ViewMode::Pessimistic) {
                let Some(proxy) = self.views.get_mut(&vid) else {
                    continue;
                };
                if vt <= proxy.last_notified_vt {
                    // Straggler below the monotonic frontier: with the
                    // engine's guess protocol this indicates the update
                    // was already superseded; it cannot be shown any more.
                    continue;
                }
                let snap = proxy.pess.entry(vt).or_insert_with(|| PessSnap {
                    token: VirtualTime::ZERO, // assigned on guess issue
                    changed: BTreeSet::new(),
                    committed: false,
                    guesses: SnapGuesses::default(),
                    coverage: BTreeMap::new(),
                    issued: Vec::new(),
                });
                snap.changed.insert(point);
                snap.committed |= committed;
                snap.coverage.insert(*obj, *t_r);
                touched_views.insert(vid);
            }
        }
        for vid in touched_views {
            self.issue_pess_guesses(vid, vt);
            self.pump_pessimistic(vid);
        }
    }

    /// (Re-)issues the RL guesses of the pessimistic snapshot at `ts`:
    /// for each watched object, the interval from its latest locally known
    /// committed value up to `ts` (or up to the update's own `tR`, which
    /// the transaction's confirmed reservation already covers) must be
    /// update-free at the primary (§4.2).
    /// The `(object, lo, hi)` intervals a snapshot at `ts` must verify:
    /// from each watched object's latest committed value (strictly) below
    /// `ts`, up to the update's own `tR` (covered by the transaction's
    /// reservation) or up to `ts`.
    fn pess_intervals(
        &self,
        vid: ViewId,
        ts: VirtualTime,
    ) -> Vec<(ObjectName, VirtualTime, VirtualTime)> {
        let Some(proxy) = self.views.get(&vid) else {
            return Vec::new();
        };
        let Some(snap) = proxy.pess.get(&ts) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for a in &proxy.attached {
            for o in self.store.subtree(*a) {
                let lo = self
                    .store
                    .get(o)
                    .ok()
                    .and_then(|m| m.values.committed_before(ts).map(|e| e.vt))
                    .unwrap_or(VirtualTime::ZERO);
                let hi = snap.coverage.get(&o).copied().unwrap_or(ts);
                if lo < hi {
                    out.push((o, lo, hi));
                }
            }
        }
        out
    }

    pub(crate) fn issue_pess_guesses(&mut self, vid: ViewId, ts: VirtualTime) {
        let Some(proxy) = self.views.get(&vid) else {
            return;
        };
        let Some(snap) = proxy.pess.get(&ts) else {
            return;
        };
        let old_token = snap.token;
        let intervals = self.pess_intervals(vid, ts);

        let token = self.clock.next();
        let mut guesses = SnapGuesses::default();
        let mut remote_batches: BTreeMap<SiteId, Vec<ReadItem>> = BTreeMap::new();
        for (o, lo, hi) in intervals.iter().map(|(o, l, h)| (*o, *l, *h)) {
            let o = &o;
            let Ok(primary) = self.store.primary_of(*o) else {
                continue;
            };
            if primary.site == self.id {
                // We are the primary: the serialization point. Any write in
                // (lo, hi) is in our history; if one is present the guess
                // fails until it resolves.
                let dirty = self
                    .store
                    .get(*o)
                    .map(|m| m.values.has_write_in(lo, hi))
                    .unwrap_or(false);
                if dirty {
                    guesses.denied = true;
                } else if let Ok(m) = self.store.get_mut(*o) {
                    m.value_reservations.reserve(lo, hi, token);
                }
            } else {
                let Some(addr) = self.addr_for(*o, primary.site) else {
                    continue;
                };
                remote_batches
                    .entry(primary.site)
                    .or_default()
                    .push(ReadItem {
                        addr,
                        t_r: lo,
                        t_g: lo,
                        hi: Some(hi),
                    });
                guesses.outstanding.insert(primary.site);
            }
        }

        if old_token != VirtualTime::ZERO {
            self.snap_tokens.remove(&old_token);
        }
        self.snap_tokens.insert(token, vid);
        if let Some(snap) = self.views.get_mut(&vid).and_then(|p| p.pess.get_mut(&ts)) {
            snap.token = token;
            snap.guesses = guesses;
            snap.issued = intervals;
        }
        for (site, items) in remote_batches {
            self.send(
                site,
                Message::SnapshotConfirm {
                    subject: token,
                    origin: self.id,
                    reads: items,
                },
            );
        }
    }

    /// Delivers every deliverable pessimistic snapshot in VT order:
    /// committed, guesses settled, and all predecessors delivered (§4.2).
    ///
    /// Held entirely while a rejoin is in flight: catch-up may still be
    /// streaming commits with VTs *below* anything already pending, so
    /// delivering now could violate monotonicity. [`Site::finish_rejoin`]
    /// pumps every view once the history is complete.
    pub(crate) fn pump_pessimistic(&mut self, vid: ViewId) {
        if !self.rejoin_awaiting.is_empty() {
            return;
        }
        loop {
            let Some(proxy) = self.views.get(&vid) else {
                return;
            };
            let Some((&ts, snap)) = proxy.pess.iter().next() else {
                return;
            };
            if !(snap.committed && snap.guesses.settled()) {
                return;
            }
            let changed: Vec<ObjectName> = snap.changed.iter().copied().collect();
            let token = snap.token;
            let proxy = self.views.get_mut(&vid).expect("checked above");
            proxy.pess.remove(&ts);
            let notification = UpdateNotification {
                ts,
                changed: &changed,
                store: &self.store,
                spawned: Default::default(),
            };
            proxy.view.update(&notification);
            let spawned = notification.spawned.into_inner();
            proxy.last_notified_vt = ts;
            if self.config.view_ledger {
                proxy.ledger.push(crate::oracle::ViewLedgerEntry {
                    ts,
                    kind: crate::oracle::ViewLedgerKind::Update(ViewMode::Pessimistic),
                });
            }
            for o in &changed {
                if let Some(cur) = self.store.get(*o).ok().and_then(|m| m.values.current()) {
                    proxy.last_seen.insert(*o, cur.vt);
                }
            }
            self.snap_tokens.remove(&token);
            self.stats.pess_notifications += 1;
            // Pessimistic delivery is already committed: one ViewCommitted
            // event, with no preceding optimistic delivery to pair against.
            self.trace_emit(TraceKind::ViewCommitted, Some(ts), None, Some(vid.0));
            self.events.push(EngineEvent::ViewUpdated {
                view: vid,
                ts,
                mode: ViewMode::Pessimistic,
            });
            for t in spawned {
                self.execute(t);
            }
        }
    }

    // ------------------------------------------------------------------
    // Event hooks from the transaction engine
    // ------------------------------------------------------------------

    /// A remote (or local) update at `vt` was applied to `objects`:
    /// account for optimistic deviations (§5.1.2 definitions).
    pub(crate) fn account_arrival(&mut self, vt: VirtualTime, objects: &[ObjectName]) {
        for obj in objects {
            let current_vt = self
                .store
                .get(*obj)
                .ok()
                .and_then(|m| m.values.current().map(|e| e.vt));
            for (vid, _) in self.watchers_of(*obj, ViewMode::Optimistic) {
                let Some(proxy) = self.views.get_mut(&vid) else {
                    continue;
                };
                let Some(last_ts) = proxy.last_notified_ts else {
                    continue;
                };
                if vt >= last_ts {
                    continue;
                }
                // The arriving update is older than the last notification.
                if current_vt.map(|c| c > vt).unwrap_or(false) {
                    // A later update to the same object was already
                    // processed: this one will never be notified.
                    self.stats.lost_updates += 1;
                } else {
                    // The object itself had no later value; the view showed
                    // other objects from a later virtual time.
                    self.stats.read_inconsistencies += 1;
                }
            }
        }
    }

    /// The transaction at `vt` (originated by `origin`) committed;
    /// `coverage` maps its written objects to their `tR`. Every commit
    /// path funnels through here, which is also why durable WAL capture
    /// hangs off the end.
    pub(crate) fn on_committed_update(
        &mut self,
        vt: VirtualTime,
        origin: SiteId,
        coverage: &BTreeMap<ObjectName, VirtualTime>,
    ) {
        // Seeded bug (checker self-test): drop the commit notice, so the
        // snapshot never becomes deliverable — §4.2 losslessness broken.
        let drop_commit = self.mutation == Some(crate::oracle::TestMutation::DropPessCommitNotice);
        let vids: Vec<ViewId> = self.views.keys().copied().collect();
        for vid in vids {
            let Some(proxy) = self.views.get_mut(&vid) else {
                continue;
            };
            match proxy.mode {
                ViewMode::Pessimistic => {
                    if let Some(snap) = proxy.pess.get_mut(&vt) {
                        if !drop_commit {
                            snap.committed = true;
                        }
                    }
                    // The commit may change `lo` for denied guesses of the
                    // earliest pending snapshot: revise and retry.
                    let revise: Vec<VirtualTime> = proxy
                        .pess
                        .iter()
                        .filter(|(_, s)| s.guesses.denied)
                        .map(|(ts, _)| *ts)
                        .collect();
                    for ts in revise {
                        self.stats.snapshot_reruns += 1;
                        self.issue_pess_guesses(vid, ts);
                    }
                    self.pump_pessimistic(vid);
                }
                ViewMode::Optimistic => {
                    if let Some(snap) = proxy.opt.as_mut() {
                        snap.guesses.rc_waits.remove(&vt);
                    }
                    self.maybe_commit_opt(vid);
                }
            }
        }
        self.capture_commit(vt, origin, coverage);
    }

    /// The transaction at `vt` aborted; `objects` are the local objects it
    /// had written.
    pub(crate) fn on_aborted_update(&mut self, vt: VirtualTime, objects: &[ObjectName]) {
        // Seeded bug (checker self-test): never rerun after a rollback, so
        // the optimistic view keeps showing rolled-back state — §4.1
        // superseded-or-committed broken.
        let skip_renotify =
            self.mutation == Some(crate::oracle::TestMutation::SkipRollbackRenotify);
        let vids: Vec<ViewId> = self.views.keys().copied().collect();
        for vid in vids {
            let Some(proxy) = self.views.get_mut(&vid) else {
                continue;
            };
            match proxy.mode {
                ViewMode::Optimistic => {
                    // Update inconsistency: a delivered notification showed
                    // the aborted value (§5.1.2).
                    if proxy.last_delivered_reads.iter().any(|(_, rvt)| *rvt == vt) {
                        self.stats.update_inconsistencies += 1;
                    }
                    // Rerun if the current snapshot depended on the aborted
                    // transaction (RC denied → "reruns the snapshot with a
                    // new tS", §4.1).
                    let depended = proxy
                        .opt
                        .as_ref()
                        .map(|s| {
                            s.guesses.rc_waits.contains(&vt)
                                || s.reads.iter().any(|(_, rvt)| *rvt == vt)
                        })
                        .unwrap_or(false);
                    let watches = objects.iter().any(|o| {
                        let mut chain = vec![*o];
                        chain.extend(self.store.ancestors(*o));
                        chain.iter().any(|c| proxy.attached.contains(c))
                    });
                    if (depended || watches) && !skip_renotify {
                        let proxy = self.views.get_mut(&vid).expect("checked above");
                        for o in objects {
                            let mut chain = vec![*o];
                            chain.extend(self.store.ancestors(*o));
                            if let Some(point) = chain.iter().find(|c| proxy.attached.contains(c)) {
                                proxy.dirty.insert(*point);
                            }
                        }
                        self.stats.snapshot_reruns += 1;
                        self.run_opt_snapshot(vid);
                    }
                }
                ViewMode::Pessimistic => {
                    // The update at vt will never commit: drop its snapshot
                    // and revise any denied guesses (the purge may have
                    // cleared their intervals).
                    if let Some(snap) = proxy.pess.remove(&vt) {
                        if snap.token != VirtualTime::ZERO {
                            self.snap_tokens.remove(&snap.token);
                        }
                    }
                    let Some(proxy) = self.views.get_mut(&vid) else {
                        continue;
                    };
                    let revise: Vec<VirtualTime> = proxy
                        .pess
                        .iter()
                        .filter(|(_, s)| s.guesses.denied)
                        .map(|(ts, _)| *ts)
                        .collect();
                    for ts in revise {
                        self.stats.snapshot_reruns += 1;
                        self.issue_pess_guesses(vid, ts);
                    }
                    self.pump_pessimistic(vid);
                }
            }
        }
    }

    /// RC resolution hook for optimistic snapshots.
    pub(crate) fn resolve_view_rc_commit(&mut self, committed: VirtualTime) {
        let vids: Vec<ViewId> = self.views.keys().copied().collect();
        for vid in vids {
            if let Some(proxy) = self.views.get_mut(&vid) {
                if let Some(snap) = proxy.opt.as_mut() {
                    snap.guesses.rc_waits.remove(&committed);
                }
            }
            self.maybe_commit_opt(vid);
        }
    }

    /// A primary confirmed a snapshot's CONFIRM-READ batch.
    pub(crate) fn on_snapshot_confirm(&mut self, subject: VirtualTime, from: SiteId) {
        let Some(&vid) = self.snap_tokens.get(&subject) else {
            return;
        };
        let Some(proxy) = self.views.get_mut(&vid) else {
            return;
        };
        match proxy.mode {
            ViewMode::Optimistic => {
                if let Some(snap) = proxy.opt.as_mut() {
                    if snap.token == subject {
                        snap.guesses.outstanding.remove(&from);
                    }
                }
                self.maybe_commit_opt(vid);
            }
            ViewMode::Pessimistic => {
                for snap in proxy.pess.values_mut() {
                    if snap.token == subject {
                        snap.guesses.outstanding.remove(&from);
                    }
                }
                self.pump_pessimistic(vid);
            }
        }
    }

    /// A primary denied a snapshot's CONFIRM-READ batch: "a straggler
    /// update is yet to arrive at the guessing site... the straggler itself
    /// will eventually arrive and cause a rerun" (§4.1).
    pub(crate) fn on_snapshot_deny(&mut self, subject: VirtualTime) {
        let Some(&vid) = self.snap_tokens.get(&subject) else {
            return;
        };
        let Some(proxy) = self.views.get_mut(&vid) else {
            return;
        };
        match proxy.mode {
            ViewMode::Optimistic => {
                if let Some(snap) = proxy.opt.as_mut() {
                    if snap.token == subject {
                        snap.guesses.denied = true;
                    }
                }
            }
            ViewMode::Pessimistic => {
                let mut denied_ts = None;
                for (ts, snap) in proxy.pess.iter_mut() {
                    if snap.token == subject {
                        snap.guesses.denied = true;
                        denied_ts = Some(*ts);
                    }
                }
                // If local commits have already shrunk the guessed
                // intervals, re-issue right away; otherwise the straggler's
                // own arrival will trigger the revision (§4.2).
                if let Some(ts) = denied_ts {
                    let fresh = self.pess_intervals(vid, ts);
                    let stale = self
                        .views
                        .get(&vid)
                        .and_then(|p| p.pess.get(&ts))
                        .map(|s| s.issued.clone())
                        .unwrap_or_default();
                    if fresh != stale {
                        self.stats.snapshot_reruns += 1;
                        self.issue_pess_guesses(vid, ts);
                        self.pump_pessimistic(vid);
                    }
                }
            }
        }
    }

    /// Dumps pending pessimistic snapshot states (debugging/tests):
    /// `(view, ts, committed, denied, outstanding, rc_waits)`.
    #[doc(hidden)]
    pub fn debug_pess_snapshots(&self) -> Vec<(ViewId, VirtualTime, bool, bool, usize, usize)> {
        let mut out = Vec::new();
        for proxy in self.views.values() {
            for (ts, snap) in &proxy.pess {
                out.push((
                    proxy.id,
                    *ts,
                    snap.committed,
                    snap.guesses.denied,
                    snap.guesses.outstanding.len(),
                    snap.guesses.rc_waits.len(),
                ));
            }
        }
        out
    }

    /// Wire address of `obj` from the perspective of `site` (for snapshot
    /// CONFIRM-READ requests and catch-up streaming).
    pub(crate) fn addr_for(&self, obj: ObjectName, site: SiteId) -> Option<ObjectAddr> {
        let (root, path) = self.store.path_to(obj).ok()?;
        let (graph, _) = self.store.effective_graph(root).ok()?;
        let root_there = graph.node_at(site)?.object;
        Some(if path.is_root() {
            ObjectAddr::Direct(root_there)
        } else {
            ObjectAddr::Indirect {
                root: root_there,
                path,
            }
        })
    }
}
