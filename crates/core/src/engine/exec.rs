//! Local transaction execution: optimistic apply, guess recording, message
//! planning, delegate-commit selection, and the commit/abort paths for
//! locally originated transactions (paper §3.1).

use std::collections::{BTreeMap, BTreeSet};

use decaf_trace::TraceKind;
use decaf_vt::{SiteId, VirtualTime};

use crate::message::{Delegate, Message, ObjectAddr, Path, ReadItem, TxnPropagate, UpdateItem};
use crate::object::ObjectName;
use crate::txn::{AbortReason, Recording, Transaction, TxnCtx, TxnHandle, TxnOutcome};

use super::{EngineEvent, PendingTxn, Site};

/// Per-destination batch under construction.
#[derive(Default)]
struct SiteBatch {
    updates: Vec<UpdateItem>,
    reads: Vec<ReadItem>,
}

impl Site {
    /// Submits a transaction for execution at this (originating) site.
    ///
    /// The transaction runs immediately and optimistically; its updates
    /// propagate to replicas and its guesses are checked at the relevant
    /// primary copies. If a guess is denied the transaction is rolled back
    /// and automatically re-executed (§2.4). The returned handle can be
    /// polled with [`Site::txn_outcome`].
    pub fn execute(&mut self, txn: Box<dyn Transaction>) -> TxnHandle {
        let handle_id = self.next_handle;
        self.next_handle += 1;
        self.stats.txns_started += 1;
        if !self.rejoin_awaiting.is_empty() {
            // Mid-rejoin: defer the gesture until catch-up completes so it
            // executes against caught-up state (released by finish_rejoin).
            self.rejoin_deferred.push((handle_id, txn));
            return TxnHandle {
                site: self.id,
                id: handle_id,
            };
        }
        let budget = self.config.retry_budget;
        self.run_attempt(handle_id, txn, budget);
        // Local execution may have committed or aborted state that parked
        // snapshot checks were waiting on.
        self.retry_parked_snaps();
        TxnHandle {
            site: self.id,
            id: handle_id,
        }
    }

    /// Runs one attempt of a transaction (initial execution or retry).
    pub(crate) fn run_attempt(
        &mut self,
        handle_id: u64,
        mut txn: Box<dyn Transaction>,
        retries_left: u32,
    ) {
        let vt = self.clock.next();
        self.trace_emit(
            TraceKind::TxnBegin,
            Some(vt),
            None,
            Some(retries_left as u64),
        );
        let mut rec = Recording::default();
        let result = {
            let mut ctx = TxnCtx {
                vt,
                store: &mut self.store,
                rec: &mut rec,
            };
            txn.execute(&mut ctx)
        };

        if let Err(e) = result {
            // Application abort: undo, notify, no retry (§2.4).
            for obj in &rec.touched {
                self.store.purge_write(*obj, vt);
            }
            self.stats.txns_aborted_user += 1;
            self.trace_emit(TraceKind::Abort, Some(vt), None, None);
            self.decided.insert(vt, TxnOutcome::Aborted);
            self.handle_outcome.insert(handle_id, TxnOutcome::Aborted);
            txn.handle_abort(&AbortReason::Application(e));
            self.events.push(EngineEvent::TxnAborted {
                vt,
                local_origin: true,
                retried: false,
            });
            return;
        }

        self.finish_attempt(handle_id, vt, rec, txn, retries_left);
    }

    /// Post-body bookkeeping: local primary checks, message planning,
    /// pending-state creation, view scheduling.
    fn finish_attempt(
        &mut self,
        handle_id: u64,
        vt: VirtualTime,
        rec: Recording,
        txn: Box<dyn Transaction>,
        retries_left: u32,
    ) {
        let mut reserved_local: BTreeSet<ObjectName> = BTreeSet::new();
        let mut batches: BTreeMap<SiteId, SiteBatch> = BTreeMap::new();
        let mut remote_primaries: BTreeSet<SiteId> = BTreeSet::new();
        let mut conflict = false;

        // ---- written objects: propagate + check ---------------------------
        // Preserve the body's write order; group addressing info per object.
        struct WriteInfo {
            root: ObjectName,
            path: Path,
            primary: SiteId,
            replica_sites: Vec<(SiteId, ObjectName)>, // (site, root name there)
        }
        let mut winfo: BTreeMap<ObjectName, WriteInfo> = BTreeMap::new();
        for w in &rec.writes {
            if winfo.contains_key(&w.object) {
                continue;
            }
            let Ok((root, path)) = self.store.path_to(w.object) else {
                conflict = true;
                break;
            };
            let Ok((graph, _)) = self.store.effective_graph(w.object) else {
                conflict = true;
                break;
            };
            let primary = match self.store.selector.primary(graph) {
                Some(p) => p.site,
                None => {
                    conflict = true;
                    break;
                }
            };
            let replica_sites = graph
                .nodes()
                .map(|n| (n.site, n.object))
                .collect::<Vec<_>>();
            winfo.insert(
                w.object,
                WriteInfo {
                    root,
                    path,
                    primary,
                    replica_sites,
                },
            );
        }

        if !conflict {
            // Local checks first: if this site is primary for anything the
            // transaction touched, verify RL/NC here and now.
            for (obj, info) in &winfo {
                let (t_r, t_g) = rec.write_meta[obj];
                if info.primary == self.id {
                    if !self.check_and_reserve(*obj, info.root, t_r, t_g, vt, true) {
                        conflict = true;
                        break;
                    }
                    reserved_local.insert(*obj);
                } else {
                    remote_primaries.insert(info.primary);
                }
            }
        }
        if !conflict {
            for (obj, r) in &rec.reads {
                if rec.write_meta.contains_key(obj) {
                    continue; // the write's check covers the read (§3.1)
                }
                let Ok((root, _)) = self.store.path_to(*obj) else {
                    conflict = true;
                    break;
                };
                let Ok(primary) = self.store.primary_of(*obj) else {
                    conflict = true;
                    break;
                };
                if primary.site == self.id {
                    if !self.check_and_reserve(*obj, root, r.t_r, r.t_g, vt, false) {
                        conflict = true;
                        break;
                    }
                    reserved_local.insert(*obj);
                } else {
                    remote_primaries.insert(primary.site);
                }
            }
        }

        if conflict {
            self.conflict_abort_unsent(handle_id, vt, &rec, reserved_local, txn, retries_left);
            return;
        }

        // ---- build per-site batches ---------------------------------------
        for w in &rec.writes {
            let info = &winfo[&w.object];
            let (t_r, t_g) = rec.write_meta[&w.object];
            for (site, root_there) in &info.replica_sites {
                if *site == self.id {
                    continue;
                }
                let addr = if info.path.is_root() {
                    ObjectAddr::Direct(*root_there)
                } else {
                    ObjectAddr::Indirect {
                        root: *root_there,
                        path: info.path.clone(),
                    }
                };
                batches.entry(*site).or_default().updates.push(UpdateItem {
                    addr,
                    t_r,
                    t_g,
                    op: w.op.clone(),
                    needs_check: *site == info.primary,
                });
            }
        }
        for (obj, r) in &rec.reads {
            if rec.write_meta.contains_key(obj) {
                continue;
            }
            let Ok(primary) = self.store.primary_of(*obj) else {
                continue;
            };
            if primary.site == self.id {
                continue;
            }
            let Ok((_, path)) = self.store.path_to(*obj) else {
                continue;
            };
            let Ok((graph, _)) = self.store.effective_graph(*obj) else {
                continue;
            };
            let root_there = graph
                .node_at(primary.site)
                .map(|n| n.object)
                .unwrap_or(primary.object);
            let addr = if path.is_root() {
                ObjectAddr::Direct(root_there)
            } else {
                ObjectAddr::Indirect {
                    root: root_there,
                    path,
                }
            };
            batches
                .entry(primary.site)
                .or_default()
                .reads
                .push(ReadItem {
                    addr,
                    t_r: r.t_r,
                    t_g: r.t_g,
                    hi: None,
                });
        }

        // ---- RC guesses, delegation, pending state -------------------------
        let mut rc_waits = rec.rc_dependencies();
        // Path RC guesses (§3.2.1): "The updated model objects must make RC
        // guesses to ensure that transactions that created their paths have
        // committed."
        for obj in rec.write_meta.keys().chain(rec.reads.keys()) {
            for dep in self.path_dependencies(*obj) {
                rc_waits.insert(dep);
            }
        }
        rc_waits.retain(|dep| !matches!(self.decided.get(dep), Some(TxnOutcome::Committed)));

        let affected: BTreeSet<SiteId> = batches.keys().copied().collect();
        let delegate_to =
            if self.config.delegate_enabled && remote_primaries.len() == 1 && rc_waits.is_empty() {
                remote_primaries.iter().next().copied()
            } else {
                None
            };

        let awaiting: BTreeSet<SiteId> = if delegate_to.is_some() {
            BTreeSet::new()
        } else {
            remote_primaries.clone()
        };

        let write_tr: BTreeMap<ObjectName, VirtualTime> = rec
            .write_meta
            .iter()
            .map(|(o, (t_r, _))| (*o, *t_r))
            .collect();
        let pess_updates: Vec<(ObjectName, VirtualTime)> =
            write_tr.iter().map(|(o, t)| (*o, *t)).collect();
        let touched = rec.touched.clone();

        // §3.2: the attempt is now one guess gambling on this many
        // outstanding remote verdicts (RL/NC checks at remote primaries
        // plus RC waits on undecided dependencies).
        let outstanding = (awaiting.len() + rc_waits.len()) as u64;
        self.trace_emit(TraceKind::Guess, Some(vt), None, Some(outstanding));

        self.pending.insert(
            vt,
            PendingTxn {
                handle_id,
                txn,
                touched: touched.clone(),
                reserved_local,
                awaiting,
                rc_waits,
                affected: affected.clone(),
                delegate_site: delegate_to,
                retries_left,
                write_tr,
                sent_batches: Vec::new(),
            },
        );

        // ---- send ----------------------------------------------------------
        for (site, batch) in batches {
            let delegate = match delegate_to {
                Some(d) if d == site => Some(Delegate {
                    notify: affected
                        .iter()
                        .copied()
                        .filter(|s| *s != d)
                        .chain(std::iter::once(self.id))
                        .collect(),
                }),
                _ => None,
            };
            let propagate = TxnPropagate {
                txn: vt,
                origin: self.id,
                updates: batch.updates,
                reads: batch.reads,
                delegate,
            };
            // Durable sites keep each sent batch so a peer that crashes
            // before voting can be re-sent its copy when it rejoins.
            if self.config.durable {
                if let Some(p) = self.pending.get_mut(&vt) {
                    p.sent_batches.push((site, propagate.clone()));
                }
            }
            self.send(site, Message::Txn(propagate));
        }

        self.events.push(EngineEvent::TxnExecuted {
            handle: TxnHandle {
                site: self.id,
                id: handle_id,
            },
            vt,
        });

        // ---- views: optimistic notification + pessimistic snapshots --------
        let changed: Vec<ObjectName> = touched.iter().copied().collect();
        self.schedule_optimistic(&changed);
        self.create_pess_snapshots(vt, &pess_updates, false);

        self.maybe_finalize(vt);
    }

    /// The uncommitted structural transactions a path to `obj` depends on:
    /// for each embedding step, the VT that created the embedding, when that
    /// entry is not yet committed (§3.2.1 path RC guesses).
    pub(crate) fn path_dependencies(&self, obj: ObjectName) -> Vec<VirtualTime> {
        let mut deps = Vec::new();
        let Ok((_, path)) = self.store.path_to(obj) else {
            return deps;
        };
        let Ok(root) = self.store.effective_root(obj) else {
            return deps;
        };
        // Walk down from the root, checking each list-embedding tag's
        // commit status in its parent's history.
        let mut cur = root;
        for elem in &path.0 {
            match elem {
                crate::message::PathElem::Index { tag, .. } => {
                    let committed = self
                        .store
                        .get(cur)
                        .ok()
                        .and_then(|o| o.values.entry_at(*tag))
                        .map(|e| e.committed)
                        .unwrap_or(true);
                    if !committed {
                        deps.push(*tag);
                    }
                }
                crate::message::PathElem::Key(_) => {
                    // Tuple embeddings: the put's VT is the child value's
                    // first history entry; approximate by the parent's
                    // uncommitted current structural entry, if any.
                    if let Ok(o) = self.store.get(cur) {
                        if let Some(e) = o.values.current() {
                            if !e.committed {
                                deps.push(e.vt);
                            }
                        }
                    }
                }
            }
            // Descend.
            let next = self
                .store
                .get(cur)
                .ok()
                .and_then(|o| o.values.current())
                .and_then(|e| match (&e.value, elem) {
                    (
                        crate::object::ObjectValue::List { entries, .. },
                        crate::message::PathElem::Index { tag, .. },
                    ) => entries.iter().find(|le| le.tag == *tag).map(|le| le.child),
                    (
                        crate::object::ObjectValue::Tuple { entries, .. },
                        crate::message::PathElem::Key(k),
                    ) => entries.get(k).copied(),
                    _ => None,
                });
            match next {
                Some(n) => cur = n,
                None => break,
            }
        }
        deps
    }

    /// RL/NC checks at this site when it is the primary copy, reserving the
    /// verified intervals on success (§3.1).
    pub(crate) fn check_and_reserve(
        &mut self,
        target: ObjectName,
        graph_root: ObjectName,
        t_r: VirtualTime,
        t_g: VirtualTime,
        vt: VirtualTime,
        is_write: bool,
    ) -> bool {
        // Inverted intervals mean the guess was formed against a newer
        // state than the timestamps admit — treat as a conflict.
        if t_r > vt || t_g > vt {
            return false;
        }
        {
            let Ok(obj) = self.store.get(target) else {
                return false;
            };
            // RL: the value interval (tR, tT) must be write-free.
            if obj.values.has_write_in(t_r, vt) {
                return false;
            }
            // NC: no foreign write-free reservation contains tT.
            if is_write && obj.value_reservations.check_write(vt).is_err() {
                return false;
            }
        }
        {
            let Ok(root) = self.store.get(graph_root) else {
                return false;
            };
            // RL for the replication graph: no graph change in (tG, tT).
            if root.graphs.has_write_in(t_g, vt) {
                return false;
            }
        }
        // Reserve both intervals (owner = the transaction).
        if let Ok(obj) = self.store.get_mut(target) {
            obj.value_reservations.reserve(t_r, vt, vt);
        }
        if let Ok(root) = self.store.get_mut(graph_root) {
            root.graph_reservations.reserve(t_g, vt, vt);
        }
        true
    }

    /// Conflict detected before any message went out: purge, release, and
    /// retry in place.
    fn conflict_abort_unsent(
        &mut self,
        handle_id: u64,
        vt: VirtualTime,
        rec: &Recording,
        reserved_local: BTreeSet<ObjectName>,
        mut txn: Box<dyn Transaction>,
        retries_left: u32,
    ) {
        for obj in &rec.touched {
            self.store.purge_write(*obj, vt);
        }
        self.release_local_reservations(&reserved_local, vt);
        self.decided.insert(vt, TxnOutcome::Aborted);
        self.stats.txns_aborted_conflict += 1;
        self.trace_emit(TraceKind::Rollback, Some(vt), None, None);
        let retried = retries_left > 0;
        self.events.push(EngineEvent::TxnAborted {
            vt,
            local_origin: true,
            retried,
        });
        if retried {
            self.stats.retries += 1;
            self.run_attempt(handle_id, txn, retries_left - 1);
        } else {
            self.handle_outcome.insert(handle_id, TxnOutcome::Aborted);
            txn.handle_abort(&AbortReason::RetriesExhausted(self.config.retry_budget));
        }
    }

    pub(crate) fn release_local_reservations(
        &mut self,
        objects: &BTreeSet<ObjectName>,
        owner: VirtualTime,
    ) {
        for obj in objects {
            let root = self.store.effective_root(*obj).unwrap_or(*obj);
            if let Ok(o) = self.store.get_mut(*obj) {
                o.value_reservations.release(owner);
            }
            if let Ok(r) = self.store.get_mut(root) {
                r.graph_reservations.release(owner);
            }
        }
    }

    /// Commits a locally pending transaction once its guesses settle.
    pub(crate) fn maybe_finalize(&mut self, vt: VirtualTime) {
        let ready = match self.pending.get(&vt) {
            Some(p) => p.delegate_site.is_none() && p.awaiting.is_empty() && p.rc_waits.is_empty(),
            None => false,
        };
        if ready {
            self.commit_local_txn(vt, true);
        }
    }

    /// Commit path for a locally originated transaction.
    pub(crate) fn commit_local_txn(&mut self, vt: VirtualTime, broadcast: bool) {
        let Some(p) = self.pending.remove(&vt) else {
            return;
        };
        self.decided.insert(vt, TxnOutcome::Committed);
        self.handle_outcome
            .insert(p.handle_id, TxnOutcome::Committed);
        self.stats.txns_committed += 1;
        self.trace_emit(TraceKind::Commit, Some(vt), None, Some(1));
        for obj in &p.touched {
            if let Ok(o) = self.store.get_mut(*obj) {
                o.values.mark_committed(vt);
            }
        }
        if broadcast {
            for site in &p.affected {
                self.send(*site, Message::Commit { txn: vt });
            }
        }
        self.events.push(EngineEvent::TxnCommitted {
            vt,
            local_origin: true,
        });
        self.resolve_rc_commit(vt);
        self.on_committed_update(vt, self.id, &p.write_tr);
        self.run_gc();
    }

    /// Abort path for a locally originated transaction (guess denied,
    /// cascading RC abort, or primary failure).
    pub(crate) fn abort_local_txn(
        &mut self,
        vt: VirtualTime,
        reason: AbortReason,
        broadcast: bool,
        retry: bool,
    ) {
        let Some(mut p) = self.pending.remove(&vt) else {
            return;
        };
        self.decided.insert(vt, TxnOutcome::Aborted);
        for obj in &p.touched {
            self.store.purge_write(*obj, vt);
        }
        let reserved = p.reserved_local.clone();
        self.release_local_reservations(&reserved, vt);
        if broadcast {
            for site in &p.affected {
                self.send(*site, Message::Abort { txn: vt });
            }
        }
        self.stats.txns_aborted_conflict += 1;
        self.trace_emit(TraceKind::Rollback, Some(vt), None, None);
        let retried = retry && p.retries_left > 0;
        self.events.push(EngineEvent::TxnAborted {
            vt,
            local_origin: true,
            retried,
        });
        let touched: Vec<ObjectName> = p.touched.iter().copied().collect();
        self.on_aborted_update(vt, &touched);
        self.cascade_rc_abort(vt);
        self.run_gc();
        if retried {
            self.stats.retries += 1;
            let budget = p.retries_left - 1;
            self.run_attempt(p.handle_id, p.txn, budget);
        } else {
            self.handle_outcome.insert(p.handle_id, TxnOutcome::Aborted);
            p.txn.handle_abort(&reason);
        }
    }

    /// Another transaction committed: release RC waits that referenced it.
    pub(crate) fn resolve_rc_commit(&mut self, committed: VirtualTime) {
        let waiters: Vec<VirtualTime> = self
            .pending
            .iter()
            .filter(|(_, p)| p.rc_waits.contains(&committed))
            .map(|(vt, _)| *vt)
            .collect();
        for w in waiters {
            if let Some(p) = self.pending.get_mut(&w) {
                p.rc_waits.remove(&committed);
            }
            self.maybe_finalize(w);
        }
        self.resolve_join_rc_commit(committed);
        self.resolve_view_rc_commit(committed);
    }

    /// Another transaction aborted: cascade into local transactions that
    /// read its values (their RC guesses failed).
    pub(crate) fn cascade_rc_abort(&mut self, aborted: VirtualTime) {
        let waiters: Vec<VirtualTime> = self
            .pending
            .iter()
            .filter(|(_, p)| p.rc_waits.contains(&aborted))
            .map(|(vt, _)| *vt)
            .collect();
        for w in waiters {
            self.abort_local_txn(w, AbortReason::DependencyAborted(aborted), true, true);
        }
        self.cascade_join_rc_abort(aborted);
    }
}
