//! Durability capture, WAL replay, and the §3.4 rejoin/catch-up protocol.
//!
//! A *durable* site ([`SiteConfig::durable`]) captures a
//! [`CommitRecord`] — the post-state of every object a transaction wrote
//! here — the moment the transaction is known committed, queues it for the
//! I/O layer ([`Site::drain_wal`]), and keeps it in an in-memory committed
//! log keyed by VT. After a crash, [`Site::recover`](crate::persist) folds
//! the newest checkpoint plus the logged commit suffix back into a site
//! ([`Site::replay_commit`]), and [`Site::begin_rejoin`] runs the paper's
//! §3.4 join protocol against the live peers:
//!
//! 1. The rejoiner broadcasts [`Message::RejoinRequest`] carrying its
//!    committed frontier *and* its full committed-VT set (the frontier
//!    alone is not a sound gap filter: a lower-VT commit may still have
//!    been in flight when the site crashed).
//! 2. Every peer re-sends propagate batches still awaiting the rejoiner's
//!    verdict, the one peer asked to `serve` streams the missed committed
//!    suffix as [`Message::CatchUp`], and all reply [`Message::RejoinAck`]
//!    with their own committed sets.
//! 3. Per ack, the rejoiner streams *its* durably-logged commits the peer
//!    missed back as a `CatchUp` flagged `rejoined: true` — which also
//!    tells the peer to abort any still-undecided remote transaction the
//!    rejoiner originated: that vote-pending work died with the crash, and
//!    parked snapshot checks must stop waiting on it.
//!
//! Gestures submitted mid-rejoin are deferred until every ack is in, so
//! they execute against caught-up state. Catch-up application is
//! idempotent: a commit already in the committed log (or otherwise fully
//! settled here) is skipped, an applied-but-undecided remote entry is
//! simply finished, and an unknown transaction takes the pre-decided
//! commit path of `on_txn`.

use std::collections::{BTreeMap, BTreeSet};

use decaf_trace::TraceKind;
use decaf_vt::{SiteId, VirtualTime};

use crate::message::{Message, TreeSnapshot, TxnPropagate, UpdateItem, WireOp};
use crate::object::ObjectName;
use crate::persist::CommitRecord;
use crate::txn::TxnOutcome;

use super::Site;

impl Site {
    // ---- durable capture --------------------------------------------------

    /// Captures a commit record for `vt` (durable sites only): the
    /// post-state of every object in `coverage`, snapshotted at the commit
    /// VT. Called from the single commit funnel `on_committed_update`, so
    /// every commit path — local, remote, delegated, join, catch-up — is
    /// recorded exactly once (`committed_log` is the dedup guard against
    /// transport-level redelivery).
    pub(crate) fn capture_commit(
        &mut self,
        vt: VirtualTime,
        origin: SiteId,
        coverage: &BTreeMap<ObjectName, VirtualTime>,
    ) {
        if !self.config.durable || self.committed_log.contains_key(&vt) {
            return;
        }
        let mut updates = Vec::with_capacity(coverage.len());
        for (obj, t_r) in coverage {
            let Ok(snap) = self.store.tree_snapshot(*obj, Some(vt)) else {
                continue;
            };
            let op = match snap {
                TreeSnapshot::Scalar(s) => WireOp::SetScalar(s),
                TreeSnapshot::Assoc(a) => WireOp::SetAssoc(a),
                other => WireOp::SetTree(other),
            };
            updates.push((*obj, *t_r, op));
        }
        self.trace_emit(
            TraceKind::WalAppend,
            Some(vt),
            None,
            Some(updates.len() as u64),
        );
        let rec = CommitRecord {
            vt,
            origin,
            updates,
        };
        self.committed_log.insert(vt, rec.clone());
        self.wal_queue.push(rec);
    }

    /// Removes and returns the commit records captured since the last
    /// drain, in commit order. The caller appends them to the on-disk log
    /// (see [`CommitLog`](crate::CommitLog)) before acknowledging
    /// durability to anyone.
    pub fn drain_wal(&mut self) -> Vec<CommitRecord> {
        std::mem::take(&mut self.wal_queue)
    }

    /// Number of commits in the in-memory committed log (durable sites).
    pub fn committed_log_len(&self) -> usize {
        self.committed_log.len()
    }

    // ---- replay -----------------------------------------------------------

    /// Re-applies one logged commit during recovery: writes the recorded
    /// post-states at the commit VT, marks them committed, records the
    /// decision, and witnesses the VT so the clock ends up strictly ahead
    /// of everything logged. No views exist yet at replay time, so this
    /// bypasses notification entirely.
    pub fn replay_commit(&mut self, rec: &CommitRecord) {
        for (obj, _t_r, op) in &rec.updates {
            if let Ok(changed) = self.store.apply_wire_op(*obj, rec.vt, op) {
                for c in changed {
                    if let Ok(o) = self.store.get_mut(c) {
                        o.values.mark_committed(rec.vt);
                    }
                }
            }
        }
        self.decided.insert(rec.vt, TxnOutcome::Committed);
        self.committed_log.insert(rec.vt, rec.clone());
        self.clock.witness(rec.vt);
    }

    /// Witnesses the highest decided VT, guaranteeing the next local
    /// timestamp is strictly ahead of anything recovered (checkpoint
    /// *or* replayed suffix).
    pub(crate) fn bump_clock_past_recovery(&mut self) {
        if let Some(hi) = self.decided.keys().max().copied() {
            self.clock.witness(hi);
        }
    }

    /// The highest VT known committed at this site, if any.
    pub fn committed_frontier(&self) -> Option<VirtualTime> {
        self.decided
            .iter()
            .filter(|(_, o)| **o == TxnOutcome::Committed)
            .map(|(vt, _)| *vt)
            .max()
    }

    /// Whether `vt` is known committed at this site.
    pub fn committed_contains(&self, vt: VirtualTime) -> bool {
        matches!(self.decided.get(&vt), Some(TxnOutcome::Committed))
    }

    /// Every VT known committed at this site, sorted.
    fn committed_have(&self) -> Vec<VirtualTime> {
        let mut have: Vec<VirtualTime> = self
            .decided
            .iter()
            .filter(|(_, o)| **o == TxnOutcome::Committed)
            .map(|(vt, _)| *vt)
            .collect();
        have.sort();
        have
    }

    /// One local drain pass for [`Site::drain_and_checkpoint`]: retries
    /// whatever can make progress without network input.
    pub(crate) fn drain_pass(&mut self) {
        self.retry_buffered();
        self.retry_parked_snaps();
    }

    // ---- rejoin protocol --------------------------------------------------

    /// Whether a rejoin started by [`Site::begin_rejoin`] is still
    /// awaiting peer acknowledgements.
    pub fn is_rejoining(&self) -> bool {
        !self.rejoin_awaiting.is_empty()
    }

    /// Starts the §3.4 rejoin after recovery: announces the recovered
    /// commit frontier to every live peer in the replication graphs,
    /// asking the lowest-numbered one to stream the missed committed
    /// suffix. Returns the number of peers contacted; `0` means there is
    /// nobody to catch up from and the site is immediately live.
    pub fn begin_rejoin(&mut self) -> usize {
        let mut peers: BTreeSet<SiteId> = BTreeSet::new();
        for obj in self.store.objects() {
            if let Some(e) = obj.graphs.current() {
                peers.extend(e.value.sites());
            }
        }
        peers.remove(&self.id);
        peers.retain(|p| !self.failed_sites.contains(p));
        if peers.is_empty() {
            return 0;
        }
        let frontier = self.committed_frontier().unwrap_or(VirtualTime::ZERO);
        let have = self.committed_have();
        let server = *peers.iter().next().expect("non-empty");
        self.trace_emit(
            TraceKind::RecoveryBegin,
            Some(frontier),
            Some(server),
            Some(peers.len() as u64),
        );
        self.rejoin_awaiting = peers.clone();
        for peer in &peers {
            self.send(
                *peer,
                Message::RejoinRequest {
                    frontier,
                    have: have.clone(),
                    serve: *peer == server,
                },
            );
        }
        peers.len()
    }

    /// A crashed peer is back and announced its committed set.
    pub(crate) fn on_rejoin_request(
        &mut self,
        from: SiteId,
        _frontier: VirtualTime,
        have: Vec<VirtualTime>,
        serve: bool,
    ) {
        self.failed_sites.remove(&from);
        // Re-send propagate batches still awaiting this peer's verdict:
        // its copy (and any vote it had formed) died with the crash.
        let resend: Vec<TxnPropagate> = self
            .pending
            .values()
            .filter(|p| p.awaiting.contains(&from))
            .filter_map(|p| {
                p.sent_batches
                    .iter()
                    .find(|(site, _)| *site == from)
                    .map(|(_, batch)| batch.clone())
            })
            .collect();
        for batch in resend {
            self.send(from, Message::Txn(batch));
        }
        if serve {
            let have: BTreeSet<VirtualTime> = have.into_iter().collect();
            let commits = self.catch_up_for(from, &have);
            if !commits.is_empty() {
                self.send(
                    from,
                    Message::CatchUp {
                        commits,
                        rejoined: false,
                    },
                );
            }
        }
        self.send(
            from,
            Message::RejoinAck {
                frontier: self.committed_frontier().unwrap_or(VirtualTime::ZERO),
                have: self.committed_have(),
            },
        );
    }

    /// A live peer acknowledged our rejoin and reported its committed set.
    pub(crate) fn on_rejoin_ack(
        &mut self,
        from: SiteId,
        _frontier: VirtualTime,
        have: Vec<VirtualTime>,
    ) {
        // Stream back the commits we durably logged that the peer missed
        // (our commit broadcasts may have died with the crash), and signal
        // it to abort whatever vote-pending work of ours was lost. Sent
        // even when empty: the abort signal is the important part.
        let have: BTreeSet<VirtualTime> = have.into_iter().collect();
        let commits = self.catch_up_for(from, &have);
        self.send(
            from,
            Message::CatchUp {
                commits,
                rejoined: true,
            },
        );
        if self.rejoin_awaiting.remove(&from) && self.rejoin_awaiting.is_empty() {
            self.finish_rejoin();
        }
    }

    /// Every rejoin ack is in (or the outstanding peers failed): release
    /// the gestures deferred during catch-up.
    pub(crate) fn finish_rejoin(&mut self) {
        self.trace_emit(
            TraceKind::RecoveryDone,
            self.committed_frontier(),
            None,
            Some(self.rejoin_deferred.len() as u64),
        );
        let deferred = std::mem::take(&mut self.rejoin_deferred);
        let budget = self.config.retry_budget;
        for (handle_id, txn) in deferred {
            self.run_attempt(handle_id, txn, budget);
        }
        self.retry_parked_snaps();
        // Pessimistic pumping was held during catch-up (late-arriving old
        // commits would break VT-monotonic delivery); release it now.
        let vids: Vec<_> = self.views.keys().copied().collect();
        for vid in vids {
            self.pump_pessimistic(vid);
        }
    }

    /// Builds the catch-up batch for `dest`: every commit in our committed
    /// log that `dest` did not report knowing, with each update re-addressed
    /// into `dest`'s namespace. Commits whose objects `dest` does not
    /// replicate are skipped (its replicas simply never see them).
    fn catch_up_for(&self, dest: SiteId, have: &BTreeSet<VirtualTime>) -> Vec<TxnPropagate> {
        let mut out = Vec::new();
        for (vt, rec) in &self.committed_log {
            if have.contains(vt) {
                continue;
            }
            let mut updates = Vec::new();
            for (obj, t_r, op) in &rec.updates {
                let Some(addr) = self.addr_for(*obj, dest) else {
                    continue;
                };
                updates.push(UpdateItem {
                    addr,
                    t_r: *t_r,
                    t_g: VirtualTime::ZERO,
                    op: op.clone(),
                    needs_check: false,
                });
            }
            if updates.is_empty() {
                continue;
            }
            out.push(TxnPropagate {
                txn: *vt,
                origin: rec.origin,
                updates,
                reads: Vec::new(),
                delegate: None,
            });
        }
        out
    }

    /// Applies a catch-up batch. Application is idempotent per commit:
    ///
    /// - already in the committed log, or a settled local/remote commit
    ///   → skip;
    /// - applied here but still undecided → this *is* the commit verdict;
    /// - unknown → apply pre-decided through the normal `on_txn` path
    ///   (which buffers on missing structural dependencies).
    ///
    /// With `rejoined` set, the batch came from a rejoiner completing its
    /// return: afterwards, any still-undecided remote transaction it
    /// originated is aborted — that work died with the crash, and nothing
    /// will ever decide it.
    pub(crate) fn on_catch_up(&mut self, from: SiteId, commits: Vec<TxnPropagate>, rejoined: bool) {
        for p in commits {
            let vt = p.txn;
            if self.committed_log.contains_key(&vt) {
                continue;
            }
            match self.decided.get(&vt).copied() {
                Some(TxnOutcome::Aborted) => continue,
                Some(TxnOutcome::Committed) => {
                    if vt.site == self.id || self.remote.contains_key(&vt) {
                        continue; // settled and applied here
                    }
                    // Decided via an orphan COMMIT summary whose update
                    // message never arrived: the catch-up carries the
                    // updates — apply them pre-decided.
                    self.dispatch(from, Message::Txn(p));
                    continue;
                }
                None => {}
            }
            if let Some(r) = self.remote.get(&vt).cloned() {
                self.decided.insert(vt, TxnOutcome::Committed);
                self.finish_remote_commit(vt, &r);
            } else {
                self.decided.insert(vt, TxnOutcome::Committed);
                self.dispatch(from, Message::Txn(p));
            }
        }
        if rejoined {
            self.abort_lost_from(from);
        }
        self.retry_buffered();
        self.retry_parked_snaps();
    }

    /// Aborts every still-undecided remote transaction originated by
    /// `from` — invoked when `from` completes a rejoin, i.e. after its
    /// reverse catch-up has committed everything it durably knew.
    fn abort_lost_from(&mut self, from: SiteId) {
        let stale: Vec<VirtualTime> = self
            .remote
            .iter()
            .filter(|(vt, r)| r.origin == from && !self.decided.contains_key(vt))
            .map(|(vt, _)| *vt)
            .collect();
        for vt in stale {
            self.decided.insert(vt, TxnOutcome::Aborted);
            self.rollback_remote(vt);
        }
    }
}
