//! Inbound message handling: remote update application, primary-site guess
//! checking, commit/abort processing, and straggler buffering (paper §3.1,
//! §3.2.1).

use std::collections::BTreeMap;

use decaf_trace::TraceKind;
use decaf_vt::{SiteId, VirtualTime};

use crate::message::{Envelope, Message, ObjectAddr, SubjectKind, TxnPropagate};
use crate::object::ObjectName;
use crate::store::ApplyBlocked;
use crate::txn::{AbortReason, TxnOutcome};

use super::{EngineEvent, RemoteTxn, Site};

impl Site {
    /// Handles one delivered protocol message.
    ///
    /// # Panics
    ///
    /// Debug builds assert the envelope is addressed to this site.
    pub fn handle_message(&mut self, env: Envelope) {
        debug_assert_eq!(env.to, self.id, "envelope delivered to the wrong site");
        self.stats.msgs_received += 1;
        self.clock.witness(env.clock);
        let seen = self.last_seen_from.entry(env.from).or_insert(0);
        *seen = (*seen).max(env.clock.lamport);
        if let Some(vt) = env.msg.witnessed_vt() {
            self.clock.witness(vt);
        }
        let from = env.from;
        self.dispatch(from, env.msg);
        self.retry_buffered();
        self.retry_parked_snaps();
        // If we have been consuming this peer's traffic without ever
        // replying, announce our clock so its GC horizon advances.
        let owed = self.silent_received.entry(from).or_insert(0);
        *owed += 1;
        if *owed >= 8 {
            *owed = 0;
            self.send(from, Message::Heartbeat);
        }
    }

    pub(crate) fn dispatch(&mut self, from: SiteId, msg: Message) {
        match msg {
            Message::Txn(p) => self.on_txn(from, p),
            Message::SnapshotConfirm {
                subject,
                origin,
                reads,
            } => self.on_snapshot_confirm_request(subject, origin, reads),
            Message::Confirm { subject, kind } => match kind {
                SubjectKind::Txn => self.on_txn_confirm(subject, from),
                SubjectKind::Snapshot => self.on_snapshot_confirm(subject, from),
            },
            Message::Deny { subject, kind } => match kind {
                SubjectKind::Txn => self.on_txn_deny(subject),
                SubjectKind::Snapshot => self.on_snapshot_deny(subject),
            },
            Message::Heartbeat => self.run_gc(),
            Message::Commit { txn } => self.on_commit(txn),
            Message::Abort { txn } => self.on_abort(txn),
            Message::JoinRequest {
                txn,
                origin,
                relation,
                a_node,
                a_graph,
                b_object,
                assoc_object,
            } => self.on_join_request(
                txn,
                origin,
                relation,
                a_node,
                a_graph,
                b_object,
                assoc_object,
            ),
            Message::JoinReply {
                txn,
                ok,
                b_node,
                merged,
                b_value,
                b_value_vt,
                b_value_committed,
                confirms_expected,
                extra_affected,
            } => self.on_join_reply(
                txn,
                ok,
                b_node,
                merged,
                b_value,
                b_value_vt,
                b_value_committed,
                confirms_expected,
                extra_affected,
            ),
            Message::GraphUpdate {
                txn,
                origin,
                target,
                graph,
                t_g,
                needs_check,
                adopt_value,
                adopt_value_vt,
            } => self.on_graph_update(
                txn,
                origin,
                target,
                graph,
                t_g,
                needs_check,
                adopt_value,
                adopt_value_vt,
            ),
            Message::OutcomeQuery { txn, asker } => self.on_outcome_query(txn, asker),
            Message::OutcomeReport { txn, outcome } => self.on_outcome_report(from, txn, outcome),
            Message::OutcomeDecision { txn, outcome } => self.on_outcome_decision(txn, outcome),
            Message::GraphPropose {
                ballot,
                coordinator,
                target,
                coord_target,
                graph,
                at,
            } => self.on_graph_propose(ballot, coordinator, target, coord_target, graph, at),
            Message::GraphAck {
                ballot,
                coord_target,
            } => self.on_graph_ack(from, ballot, coord_target),
            Message::GraphApply {
                ballot,
                target,
                graph,
                at,
            } => self.on_graph_apply(ballot, target, graph, at),
            Message::RejoinRequest {
                frontier,
                have,
                serve,
            } => self.on_rejoin_request(from, frontier, have, serve),
            Message::RejoinAck { frontier, have } => self.on_rejoin_ack(from, frontier, have),
            Message::CatchUp { commits, rejoined } => self.on_catch_up(from, commits, rejoined),
        }
    }

    // ------------------------------------------------------------------
    // Transaction propagation (WRITE + CONFIRM-READ)
    // ------------------------------------------------------------------

    fn on_txn(&mut self, from: SiteId, p: TxnPropagate) {
        // Pre-decided transactions: "the site retains the fact that the
        // transaction has committed so that if any future update messages
        // arrive, the updates are considered committed... aborted ... the
        // updates are ignored" (§3.1).
        match self.decided.get(&p.txn).copied() {
            Some(TxnOutcome::Aborted) => return,
            Some(TxnOutcome::Committed) => {
                if self.committed_log.contains_key(&p.txn) {
                    // Durable sites: the commit is fully applied and
                    // recorded — a redelivery (e.g. a transport replaying
                    // stranded envelopes after a reconnect, or an
                    // overlapping catch-up) must not re-notify views or
                    // append a duplicate WAL record.
                    return;
                }
                match self.prevalidate(&p) {
                    Err(ApplyBlocked::MissingDependency(_)) => {
                        self.buffered.push((from, p));
                        return;
                    }
                    Err(ApplyBlocked::Fatal(_)) => return, // nothing resolvable
                    Ok(()) => {}
                }
                let applied = self.apply_updates(&p);
                for (obj, _) in &applied {
                    if let Ok(o) = self.store.get_mut(*obj) {
                        o.values.mark_committed(p.txn);
                    }
                }
                let coverage: BTreeMap<ObjectName, VirtualTime> = applied.into_iter().collect();
                let objs: Vec<(ObjectName, VirtualTime)> =
                    coverage.iter().map(|(o, t)| (*o, *t)).collect();
                let names: Vec<ObjectName> = coverage.keys().copied().collect();
                self.schedule_optimistic(&names);
                self.create_pess_snapshots(p.txn, &objs, true);
                self.on_committed_update(p.txn, p.origin, &coverage);
                self.run_gc();
                return;
            }
            None => {}
        }

        // Straggler dependency check: if any item's path or tag cannot be
        // resolved yet, buffer the whole message (§3.2.1: "the propagation
        // will block until the earlier update is received"). Unresolvable
        // (fatal) addressing is dropped — and denied, if a verdict was
        // expected — rather than wedged.
        match self.prevalidate(&p) {
            Err(ApplyBlocked::MissingDependency(_)) => {
                self.buffered.push((from, p));
                return;
            }
            Err(ApplyBlocked::Fatal(_)) => {
                if p.needs_reply() && p.delegate.is_none() {
                    self.send(
                        p.origin,
                        Message::Deny {
                            subject: p.txn,
                            kind: SubjectKind::Txn,
                        },
                    );
                } else if let Some(d) = &p.delegate {
                    self.decided.insert(p.txn, TxnOutcome::Aborted);
                    for site in &d.notify {
                        if *site != self.id {
                            self.send(*site, Message::Abort { txn: p.txn });
                        }
                    }
                }
                return;
            }
            Ok(()) => {}
        }

        let applied = self.apply_updates(&p);
        let names: Vec<ObjectName> = applied.iter().map(|(o, _)| *o).collect();
        self.account_arrival(p.txn, &names);

        // Primary-side guess checks (RL for reads and writes, NC for
        // writes, RL for replication graphs).
        let mut ok = true;
        for item in &p.updates {
            if !item.needs_check {
                continue;
            }
            let Ok(target) = self.resolve_now(&item.addr) else {
                ok = false;
                continue;
            };
            let root = self.graph_root_of(&item.addr, target);
            if !self.check_and_reserve(target, root, item.t_r, item.t_g, p.txn, true) {
                ok = false;
            }
        }
        for r in &p.reads {
            let Ok(target) = self.resolve_now(&r.addr) else {
                ok = false;
                continue;
            };
            let root = self.graph_root_of(&r.addr, target);
            if !self.check_and_reserve(target, root, r.t_r, r.t_g, p.txn, false) {
                ok = false;
            }
        }

        // Record the remote transaction for later commit/abort processing.
        let entry = self.remote.entry(p.txn).or_insert_with(|| RemoteTxn {
            origin: p.origin,
            ..Default::default()
        });
        for (obj, t_r) in &applied {
            entry.objects.insert(*obj, *t_r);
        }

        if !names.is_empty() {
            self.events.push(EngineEvent::RemoteApplied {
                vt: p.txn,
                objects: names.clone(),
            });
            // Optimistic views: notify as soon as the update arrives (§4.1)
            // — but a straggler that did not become the current value yields
            // no notification (a *lost update*, §5.1.2).
            let fresh: Vec<ObjectName> = names
                .iter()
                .copied()
                .filter(|o| {
                    self.store
                        .get(*o)
                        .ok()
                        .and_then(|m| m.values.current())
                        .map(|e| e.vt == p.txn)
                        .unwrap_or(false)
                })
                .collect();
            self.schedule_optimistic(&fresh);
            // Pessimistic views: pre-create the snapshot and pre-issue its
            // guesses so confirmations race the commit (§5.1.2).
            self.create_pess_snapshots(p.txn, &applied, false);
        }

        if p.needs_reply() {
            if let Some(delegate) = &p.delegate {
                // Delegate commit (§3.1): this site decides for the whole
                // transaction and broadcasts the summary itself.
                let notify = delegate.notify.clone();
                if ok {
                    self.decided.insert(p.txn, TxnOutcome::Committed);
                    if let Some(r) = self.remote.get(&p.txn).cloned() {
                        self.finish_remote_commit(p.txn, &r);
                    }
                    for site in notify {
                        if site != self.id {
                            self.send(site, Message::Commit { txn: p.txn });
                        }
                    }
                } else {
                    self.decided.insert(p.txn, TxnOutcome::Aborted);
                    self.rollback_remote(p.txn);
                    for site in notify {
                        if site != self.id {
                            self.send(site, Message::Abort { txn: p.txn });
                        }
                    }
                }
            } else if ok {
                self.send(
                    p.origin,
                    Message::Confirm {
                        subject: p.txn,
                        kind: SubjectKind::Txn,
                    },
                );
            } else {
                self.send(
                    p.origin,
                    Message::Deny {
                        subject: p.txn,
                        kind: SubjectKind::Txn,
                    },
                );
            }
        }
    }

    /// Checks that every update and read in `p` can be resolved and applied
    /// right now (nothing blocks on a missing structural dependency).
    fn prevalidate(&self, p: &TxnPropagate) -> Result<(), ApplyBlocked> {
        for item in &p.updates {
            let target = self.store.resolve(&item.addr)?;
            if let crate::message::WireOp::ListRemove { tag } = &item.op {
                // Historically-present tags are acceptable (already-removed
                // entries fold as a no-op); only genuinely unseen tags
                // block.
                let known = self.store.find_list_child_by_tag(target, *tag).is_some();
                let already = self
                    .store
                    .get(target)
                    .ok()
                    .map(|o| o.values.entry_at(p.txn).is_some())
                    .unwrap_or(false);
                if !known && !already {
                    return Err(ApplyBlocked::MissingDependency(Some(*tag)));
                }
            }
        }
        for r in &p.reads {
            self.store.resolve(&r.addr)?;
        }
        Ok(())
    }

    /// Applies all updates of a prevalidated propagation, returning the
    /// `(object, tR)` pairs actually applied.
    fn apply_updates(&mut self, p: &TxnPropagate) -> Vec<(ObjectName, VirtualTime)> {
        let mut applied = Vec::new();
        for item in &p.updates {
            let Ok(target) = self.resolve_now(&item.addr) else {
                continue;
            };
            match self.store.apply_wire_op(target, p.txn, &item.op) {
                Ok(changed) => {
                    for c in changed {
                        applied.push((c, item.t_r));
                    }
                }
                Err(_) => continue, // prevalidated; fatal kind errors drop the item
            }
        }
        applied
    }

    fn resolve_now(&self, addr: &ObjectAddr) -> Result<ObjectName, ApplyBlocked> {
        self.store.resolve(addr)
    }

    /// The object whose replication-graph history governs `addr` (the
    /// direct root named in the address).
    fn graph_root_of(&self, addr: &ObjectAddr, target: ObjectName) -> ObjectName {
        match addr {
            ObjectAddr::Direct(_) => target,
            ObjectAddr::Indirect { root, .. } => *root,
        }
    }

    /// Retries buffered straggler messages until a fixpoint.
    pub(crate) fn retry_buffered(&mut self) {
        for _ in 0..64 {
            if self.buffered.is_empty() {
                return;
            }
            let taken = std::mem::take(&mut self.buffered);
            let n = taken.len();
            for (from, p) in taken {
                self.on_txn(from, p);
            }
            if self.buffered.len() >= n {
                return; // no progress this pass
            }
        }
    }

    // ------------------------------------------------------------------
    // Snapshot CONFIRM-READ service (primary side, §4)
    // ------------------------------------------------------------------

    fn on_snapshot_confirm_request(
        &mut self,
        subject: VirtualTime,
        origin: SiteId,
        reads: Vec<crate::message::ReadItem>,
    ) {
        match self.evaluate_snapshot_reads(subject, &reads) {
            SnapVerdict::Confirm => {
                // Reserve every interval, then confirm.
                for r in &reads {
                    if let Ok(target) = self.resolve_now(&r.addr) {
                        let hi = r.hi.unwrap_or(subject);
                        if let Ok(o) = self.store.get_mut(target) {
                            o.value_reservations.reserve(r.t_r, hi, subject);
                        }
                    }
                }
                self.send(
                    origin,
                    Message::Confirm {
                        subject,
                        kind: SubjectKind::Snapshot,
                    },
                );
            }
            SnapVerdict::Deny => {
                self.send(
                    origin,
                    Message::Deny {
                        subject,
                        kind: SubjectKind::Snapshot,
                    },
                );
            }
            SnapVerdict::Park => {
                // Blocked only by uncommitted writes: defer the verdict
                // until they decide — a denied-then-aborted write must not
                // permanently wedge the snapshot.
                self.parked_snaps.push((subject, origin, reads));
            }
        }
    }

    /// Classifies a snapshot CONFIRM-READ batch against current state.
    fn evaluate_snapshot_reads(
        &self,
        subject: VirtualTime,
        reads: &[crate::message::ReadItem],
    ) -> SnapVerdict {
        let mut park = false;
        for r in reads {
            let Ok(target) = self.resolve_now(&r.addr) else {
                return SnapVerdict::Deny;
            };
            let hi = r.hi.unwrap_or(subject);
            let Ok(obj) = self.store.get(target) else {
                return SnapVerdict::Deny;
            };
            if obj.values.has_committed_write_in(r.t_r, hi) {
                // A committed update the requester has not seen: hard deny;
                // the commit's arrival at the requester revises the guess.
                return SnapVerdict::Deny;
            }
            if obj.values.has_write_in(r.t_r, hi) {
                park = true;
            }
        }
        if park {
            SnapVerdict::Park
        } else {
            SnapVerdict::Confirm
        }
    }

    /// Re-evaluates parked snapshot checks after any commit or abort
    /// changed the histories.
    pub(crate) fn retry_parked_snaps(&mut self) {
        if self.parked_snaps.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.parked_snaps);
        for (subject, origin, reads) in parked {
            self.on_snapshot_confirm_request(subject, origin, reads);
        }
    }

    // ------------------------------------------------------------------
    // Verdicts and summaries
    // ------------------------------------------------------------------

    fn on_txn_confirm(&mut self, subject: VirtualTime, from: SiteId) {
        if let Some(p) = self.pending.get_mut(&subject) {
            p.awaiting.remove(&from);
            self.maybe_finalize(subject);
            return;
        }
        self.on_collab_confirm(subject);
    }

    fn on_txn_deny(&mut self, subject: VirtualTime) {
        if self.pending.contains_key(&subject) {
            self.abort_local_txn(subject, AbortReason::Conflict, true, true);
            return;
        }
        self.on_collab_deny(subject);
    }

    pub(crate) fn on_commit(&mut self, txn: VirtualTime) {
        if self.decided.get(&txn) == Some(&TxnOutcome::Committed)
            && !self.pending.contains_key(&txn)
        {
            return; // duplicate
        }
        self.decided.insert(txn, TxnOutcome::Committed);
        if self.pending.contains_key(&txn) {
            // Delegated transaction decided by the delegate (§3.1).
            self.commit_local_txn(txn, false);
            return;
        }
        if self.joins.contains_key(&txn) || self.graph_txns.contains_key(&txn) {
            self.on_collab_commit_summary(txn);
            return;
        }
        if let Some(r) = self.remote.get(&txn).cloned() {
            self.finish_remote_commit(txn, &r);
        }
        self.resolve_rc_commit(txn);
    }

    /// Marks a remote transaction's effects committed and runs the
    /// downstream hooks (views, RC resolution, GC).
    pub(crate) fn finish_remote_commit(&mut self, txn: VirtualTime, r: &RemoteTxn) {
        for obj in r.objects.keys() {
            if let Ok(o) = self.store.get_mut(*obj) {
                o.values.mark_committed(txn);
            }
        }
        for obj in &r.graph_objects {
            if let Ok(o) = self.store.get_mut(*obj) {
                o.graphs.mark_committed(txn);
                o.values.mark_committed(txn);
            }
        }
        for (obj, at) in &r.adopted {
            if let Ok(o) = self.store.get_mut(*obj) {
                o.values.mark_committed(*at);
            }
        }
        self.trace_emit(TraceKind::Commit, Some(txn), None, Some(0));
        self.events.push(EngineEvent::TxnCommitted {
            vt: txn,
            local_origin: false,
        });
        self.resolve_rc_commit(txn);
        let coverage: BTreeMap<ObjectName, VirtualTime> =
            r.objects.iter().map(|(o, t)| (*o, *t)).collect();
        self.on_committed_update(txn, r.origin, &coverage);
        self.run_gc();
    }

    pub(crate) fn on_abort(&mut self, txn: VirtualTime) {
        if self.decided.get(&txn) == Some(&TxnOutcome::Aborted) && !self.pending.contains_key(&txn)
        {
            return; // duplicate
        }
        self.decided.insert(txn, TxnOutcome::Aborted);
        if self.pending.contains_key(&txn) {
            // Delegated transaction denied by the delegate: retry.
            self.abort_local_txn(txn, AbortReason::Conflict, false, true);
            return;
        }
        if self.joins.contains_key(&txn) || self.graph_txns.contains_key(&txn) {
            self.on_collab_abort_summary(txn);
            return;
        }
        self.rollback_remote(txn);
    }

    /// Rolls back a remote transaction's effects at this site.
    pub(crate) fn rollback_remote(&mut self, txn: VirtualTime) {
        let Some(r) = self.remote.remove(&txn) else {
            return;
        };
        let objects: Vec<ObjectName> = r.objects.keys().copied().collect();
        for obj in &objects {
            self.store.purge_write(*obj, txn);
        }
        for obj in &r.graph_objects {
            if let Ok(o) = self.store.get_mut(*obj) {
                o.graphs.purge(txn);
            }
            self.store.purge_write(*obj, txn);
        }
        for (obj, at) in &r.adopted {
            self.store.purge_write(*obj, *at);
        }
        // Release any reservations this transaction holds here (it may have
        // been checked at this primary before the deny elsewhere).
        for o in self.store.objects_mut() {
            o.value_reservations.release(txn);
            o.graph_reservations.release(txn);
        }
        self.trace_emit(TraceKind::Rollback, Some(txn), None, None);
        self.events.push(EngineEvent::TxnAborted {
            vt: txn,
            local_origin: false,
            retried: false,
        });
        self.cascade_rc_abort(txn);
        self.on_aborted_update(txn, &objects);
        self.run_gc();
    }
}

/// Verdict classes for snapshot CONFIRM-READ evaluation.
enum SnapVerdict {
    Confirm,
    Deny,
    Park,
}
