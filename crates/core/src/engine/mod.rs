//! The site engine: a sans-I/O state machine implementing the paper's
//! concurrency-control (§3) and view-notification (§4) algorithms.

mod collab;
mod exec;
mod failure;
mod handlers;
mod recovery;
mod views;

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use decaf_vt::{LamportClock, SiteId, VirtualTime};

use crate::collab::{GraphTxn, JoinOp};
use crate::error::DecafError;
use crate::graph::{NodeRef, PrimarySelector, ReplicationGraph};
use crate::message::{Envelope, Message, TxnPropagate};
use crate::object::{ObjectKind, ObjectName, ObjectValue};
use crate::stats::SiteStats;
use crate::store::Store;
use crate::txn::{Transaction, TxnHandle, TxnOutcome};
use crate::value::ScalarValue;
use crate::view::{ViewId, ViewMode, ViewProxy};

/// An installed authorization monitor (paper §1: "users may also code
/// authorization monitors to restrict access to sensitive objects").
pub(crate) type Authorizer = Box<dyn Fn(&crate::collab::Invitation, NodeRef) -> bool + Send>;

/// Tuning knobs for a [`Site`].
#[derive(Debug, Clone, Copy)]
pub struct SiteConfig {
    /// Primary-copy selection function (must be identical at every site).
    pub selector: PrimarySelector,
    /// How many times a conflict-aborted transaction is automatically
    /// re-executed before giving up (paper §2.4 implies unbounded; a budget
    /// keeps livelock detectable in experiments).
    pub retry_budget: u32,
    /// Whether the delegate-commit optimization (§3.1) is enabled — the
    /// `a1_delegate` ablation turns it off.
    pub delegate_enabled: bool,
    /// Whether view proxies record a notification ledger for the
    /// model-checking oracles (see [`crate::ViewLedgerEntry`]). Off by
    /// default: the ledger grows with every delivery.
    pub view_ledger: bool,
    /// Whether the site captures a durable [`CommitRecord`] for every
    /// committed transaction (drained with [`Site::drain_wal`] and kept in
    /// the in-memory committed log that serves peer catch-up). Off by
    /// default: capture snapshots every written object on the commit path.
    pub durable: bool,
}

impl Default for SiteConfig {
    fn default() -> Self {
        SiteConfig {
            selector: PrimarySelector::default(),
            retry_budget: 64,
            delegate_enabled: true,
            view_ledger: false,
            durable: false,
        }
    }
}

/// A locally originated transaction awaiting its guesses.
pub(crate) struct PendingTxn {
    pub handle_id: u64,
    pub txn: Box<dyn Transaction>,
    /// Objects written (targets of rollback on abort).
    pub touched: BTreeSet<ObjectName>,
    /// Objects on which this site reserved intervals locally (released on
    /// abort).
    pub reserved_local: BTreeSet<ObjectName>,
    /// Primary sites whose Confirm is outstanding.
    pub awaiting: BTreeSet<SiteId>,
    /// RC guesses: uncommitted transactions whose commit we await.
    pub rc_waits: BTreeSet<VirtualTime>,
    /// Sites that must receive the summary COMMIT/ABORT.
    pub affected: BTreeSet<SiteId>,
    /// Commit decision delegated to the single remote primary (§3.1).
    pub delegate_site: Option<SiteId>,
    pub retries_left: u32,
    /// Per written object, the `tR` carried in its updates (pessimistic
    /// views use it as reservation coverage, §5.1.2).
    pub write_tr: BTreeMap<ObjectName, VirtualTime>,
    /// The propagate batch sent to each peer, retained on durable sites so
    /// a peer that crashed before voting can be re-sent its copy when it
    /// rejoins (empty when `SiteConfig::durable` is off).
    pub sent_batches: Vec<(SiteId, TxnPropagate)>,
}

impl fmt::Debug for PendingTxn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PendingTxn")
            .field("handle_id", &self.handle_id)
            .field("awaiting", &self.awaiting)
            .field("rc_waits", &self.rc_waits)
            .field("delegate_site", &self.delegate_site)
            .finish()
    }
}

/// A remote transaction whose updates were applied at this site.
#[derive(Debug, Default, Clone)]
pub(crate) struct RemoteTxn {
    pub origin: SiteId,
    /// Applied objects with the `tR` their update carried.
    pub objects: BTreeMap<ObjectName, VirtualTime>,
    /// Objects whose replication graph changed at this VT.
    pub graph_objects: BTreeSet<ObjectName>,
    /// Join-adopted values applied at their original (older) VTs:
    /// `(object, value VT)` — committed/purged at that VT, not the txn's.
    pub adopted: Vec<(ObjectName, VirtualTime)>,
}

/// State of an in-doubt-transaction resolution this site coordinates after
/// an originator failure (§3.4).
#[derive(Debug)]
pub(crate) struct OutcomeQueryState {
    pub expecting: BTreeSet<SiteId>,
    pub any_commit: bool,
}

/// Coordinator state of a graph-repair consensus round (§3.4, primary-site
/// failure).
#[derive(Debug)]
pub(crate) struct ConsensusState {
    pub object: ObjectName,
    pub graph: ReplicationGraph,
    pub at: VirtualTime,
    pub awaiting: BTreeSet<SiteId>,
    /// Per-site local object names, for the Apply broadcast.
    pub targets: BTreeMap<SiteId, ObjectName>,
}

/// Observable engine happenings, for harnesses to timestamp and analyze.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineEvent {
    /// A locally submitted transaction finished its (optimistic) local
    /// execution at `vt`.
    TxnExecuted {
        /// The transaction's handle.
        handle: TxnHandle,
        /// VT of this attempt.
        vt: VirtualTime,
    },
    /// The transaction at `vt` is known committed at this site.
    TxnCommitted {
        /// The committed transaction.
        vt: VirtualTime,
        /// Whether it originated here.
        local_origin: bool,
    },
    /// The transaction at `vt` is known aborted at this site.
    TxnAborted {
        /// The aborted transaction.
        vt: VirtualTime,
        /// Whether it originated here.
        local_origin: bool,
        /// Whether an automatic retry was scheduled.
        retried: bool,
    },
    /// A remote transaction's updates were applied here (pre-commit).
    RemoteApplied {
        /// The remote transaction.
        vt: VirtualTime,
        /// The objects whose values changed.
        objects: Vec<ObjectName>,
    },
    /// A view received an update notification.
    ViewUpdated {
        /// The notified view.
        view: ViewId,
        /// Snapshot VT.
        ts: VirtualTime,
        /// The view's mode.
        mode: ViewMode,
    },
    /// An optimistic view received a commit notification.
    ViewCommitted {
        /// The notified view.
        view: ViewId,
        /// VT of the snapshot that proved committed.
        ts: VirtualTime,
    },
    /// A join operation finished.
    JoinCompleted {
        /// The local object that joined.
        object: ObjectName,
        /// The join transaction.
        vt: VirtualTime,
        /// Whether it committed.
        ok: bool,
    },
    /// This site finished reacting to a failure notification.
    SiteFailureHandled {
        /// The failed site.
        failed: SiteId,
    },
}

/// One collaborating application instance: the DECAF engine.
///
/// `Site` is sans-I/O: it never performs network operations itself.
/// Drive it by calling [`execute`](Site::execute) /
/// [`handle_message`](Site::handle_message) /
/// [`notify_site_failed`](Site::notify_site_failed), then deliver whatever
/// [`drain_outbox`](Site::drain_outbox) returns. See the crate docs for a
/// complete example.
pub struct Site {
    pub(crate) id: SiteId,
    pub(crate) config: SiteConfig,
    pub(crate) clock: LamportClock,
    pub(crate) store: Store,
    pub(crate) outbox: Vec<Envelope>,
    pub(crate) events: Vec<EngineEvent>,
    pub(crate) stats: SiteStats,
    /// Structured trace sink; the default disabled sink makes every emit
    /// point a single branch (no allocation, no lock).
    pub(crate) trace: decaf_trace::TraceSink,

    pub(crate) next_handle: u64,
    /// Highest Lamport value seen on an envelope from each peer (FIFO
    /// links make this a safe pruning horizon for decided-outcome records).
    pub(crate) last_seen_from: HashMap<SiteId, u64>,
    /// Reply-free messages received per peer since our last send to them;
    /// a heartbeat goes out when this passes the ack threshold so the
    /// peer's GC horizon keeps advancing.
    pub(crate) silent_received: HashMap<SiteId, u32>,
    pub(crate) pending: HashMap<VirtualTime, PendingTxn>,
    pub(crate) handle_outcome: HashMap<u64, TxnOutcome>,
    pub(crate) remote: HashMap<VirtualTime, RemoteTxn>,
    pub(crate) decided: HashMap<VirtualTime, TxnOutcome>,
    /// Messages whose application blocked on a missing structural
    /// dependency (§3.2.1), retried after each state change.
    pub(crate) buffered: Vec<(SiteId, TxnPropagate)>,

    pub(crate) views: BTreeMap<ViewId, ViewProxy>,
    pub(crate) next_view: u64,
    /// Snapshot token → owning view (Confirm/Deny routing).
    pub(crate) snap_tokens: HashMap<VirtualTime, ViewId>,

    /// Snapshot CONFIRM-READ requests blocked only by *uncommitted* writes
    /// in their interval: parked until those writes decide (§4 deferral).
    pub(crate) parked_snaps: Vec<(VirtualTime, SiteId, Vec<crate::message::ReadItem>)>,
    pub(crate) joins: HashMap<VirtualTime, JoinOp>,
    pub(crate) graph_txns: HashMap<VirtualTime, GraphTxn>,
    pub(crate) next_relation: u64,
    pub(crate) authorizer: Option<Authorizer>,

    pub(crate) failed_sites: BTreeSet<SiteId>,
    pub(crate) outcome_queries: HashMap<VirtualTime, OutcomeQueryState>,
    pub(crate) consensus: HashMap<u64, ConsensusState>,
    pub(crate) next_ballot: u64,
    /// Transactions aborted by a primary failure, re-executed after the
    /// graph repair commits (§3.4).
    pub(crate) retry_after_repair: Vec<(u64, Box<dyn Transaction>)>,

    /// Bookkeeping of the most recent GC sweep, for the checker's
    /// straggler-view oracle (see [`crate::GcWatermark`]).
    pub(crate) last_gc: Option<crate::oracle::GcWatermark>,
    /// Seeded protocol bug, injected only by checker self-tests.
    pub(crate) mutation: Option<crate::oracle::TestMutation>,

    /// Durable sites only: every commit this site has fully applied, by
    /// VT — the dedup guard for catch-up redelivery and the source a live
    /// peer streams from when a rejoiner announces its frontier. Never
    /// pruned (commit records are small; pruning would silently cap how
    /// far behind a rejoiner may fall — future work is checkpoint-anchored
    /// truncation).
    pub(crate) committed_log: BTreeMap<VirtualTime, crate::persist::CommitRecord>,
    /// Commit records captured since the last [`Site::drain_wal`], in
    /// commit order; the I/O layer appends them to the on-disk log.
    pub(crate) wal_queue: Vec<crate::persist::CommitRecord>,
    /// Peers whose `RejoinAck` is outstanding after [`Site::begin_rejoin`].
    pub(crate) rejoin_awaiting: BTreeSet<SiteId>,
    /// Gestures submitted while rejoining, deferred until every ack is in.
    pub(crate) rejoin_deferred: Vec<(u64, Box<dyn Transaction>)>,
}

impl fmt::Debug for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Site")
            .field("id", &self.id)
            .field("pending", &self.pending.len())
            .field("views", &self.views.len())
            .finish()
    }
}

impl Site {
    /// Creates a site with the default [`SiteConfig`].
    pub fn new(id: SiteId) -> Self {
        Self::with_config(id, SiteConfig::default())
    }

    /// Creates a site with an explicit configuration.
    pub fn with_config(id: SiteId, config: SiteConfig) -> Self {
        let mut store = Store::new(id);
        store.selector = config.selector;
        Site {
            id,
            config,
            clock: LamportClock::new(id),
            store,
            outbox: Vec::new(),
            events: Vec::new(),
            stats: SiteStats::default(),
            trace: decaf_trace::TraceSink::disabled(),
            next_handle: 0,
            last_seen_from: HashMap::new(),
            silent_received: HashMap::new(),
            pending: HashMap::new(),
            handle_outcome: HashMap::new(),
            remote: HashMap::new(),
            decided: HashMap::new(),
            buffered: Vec::new(),
            views: BTreeMap::new(),
            next_view: 0,
            snap_tokens: HashMap::new(),
            parked_snaps: Vec::new(),
            joins: HashMap::new(),
            graph_txns: HashMap::new(),
            next_relation: 0,
            authorizer: None,
            failed_sites: BTreeSet::new(),
            outcome_queries: HashMap::new(),
            consensus: HashMap::new(),
            next_ballot: 0,
            retry_after_repair: Vec::new(),
            last_gc: None,
            mutation: None,
            committed_log: BTreeMap::new(),
            wal_queue: Vec::new(),
            rejoin_awaiting: BTreeSet::new(),
            rejoin_deferred: Vec::new(),
        }
    }

    /// This site's identifier.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// The statistics accumulated so far. The trace sink's dropped-event
    /// counter is folded in so end-of-run reports expose trace loss.
    pub fn stats(&self) -> SiteStats {
        let mut stats = self.stats;
        stats.trace_events_dropped = self.trace.dropped();
        stats
    }

    /// Resets the statistics counters (e.g. after a benchmark warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = SiteStats::default();
    }

    /// Installs a trace sink; engine events (transaction lifecycle, view
    /// notification, GC, failure handling) are emitted into it from then
    /// on. Pass [`TraceSink::disabled`](decaf_trace::TraceSink::disabled)
    /// to turn tracing back off.
    pub fn set_trace_sink(&mut self, sink: decaf_trace::TraceSink) {
        self.trace = sink;
    }

    /// The installed trace sink (disabled by default). Cloning the handle
    /// shares the underlying ring, so callers can export a JSONL snapshot
    /// or read histogram summaries while the engine keeps emitting.
    pub fn trace_sink(&self) -> &decaf_trace::TraceSink {
        &self.trace
    }

    /// Shorthand for emitting an engine-side trace event: converts the
    /// engine's [`VirtualTime`] to the trace layer's scalar pair and
    /// derives the causal span from the subject VT — `(owner, lamport)`
    /// is exactly the span key wire envelopes carry, so engine events
    /// (commits, view notifications) stitch into the same cross-site
    /// span as the transport's send/receive events.
    #[inline]
    pub(crate) fn trace_emit(
        &self,
        kind: decaf_trace::TraceKind,
        vt: Option<VirtualTime>,
        peer: Option<SiteId>,
        n: Option<u64>,
    ) {
        self.trace.emit_span(
            kind,
            vt.map(|t| (t.lamport, t.site.0)),
            peer.map(|p| p.0),
            n,
            vt.map(|t| (t.site.0, t.lamport, u32::from(t.site != self.id))),
        );
    }

    /// Removes and returns the messages this site wants delivered.
    pub fn drain_outbox(&mut self) -> Vec<Envelope> {
        std::mem::take(&mut self.outbox)
    }

    /// Removes and returns the engine events since the last drain.
    pub fn drain_events(&mut self) -> Vec<EngineEvent> {
        std::mem::take(&mut self.events)
    }

    /// Whether this site has no in-flight work (pending transactions,
    /// joins, buffered stragglers, an in-progress rejoin, or unsent
    /// messages).
    pub fn is_quiescent(&self) -> bool {
        self.pending.is_empty()
            && self.joins.is_empty()
            && self.graph_txns.is_empty()
            && self.buffered.is_empty()
            && self.rejoin_awaiting.is_empty()
            && self.rejoin_deferred.is_empty()
            && self.outbox.is_empty()
    }

    pub(crate) fn send(&mut self, to: SiteId, msg: Message) {
        if to == self.id {
            // Loopback: handle immediately rather than hitting the network.
            self.dispatch(self.id, msg);
            return;
        }
        self.stats.msgs_sent += 1;
        self.silent_received.insert(to, 0);
        // Stamp the causal trace context: the subject VT's owner is the
        // span origin, and relayed traffic about somebody else's subject
        // counts one hop more than originated traffic.
        let span = msg.witnessed_vt().map(|vt| crate::message::SpanCtx {
            origin: vt.site,
            seq: vt.lamport,
            hop: u32::from(vt.site != self.id),
        });
        self.outbox.push(Envelope {
            from: self.id,
            to,
            clock: self.clock.now(),
            msg,
            span,
        });
    }

    // ---- object creation --------------------------------------------------

    /// Creates an integer model object with a committed initial value.
    pub fn create_int(&mut self, v: i64) -> ObjectName {
        self.store
            .create_root(ObjectKind::Int, ObjectValue::Scalar(ScalarValue::Int(v)))
    }

    /// Creates a real model object with a committed initial value.
    pub fn create_real(&mut self, v: f64) -> ObjectName {
        self.store
            .create_root(ObjectKind::Real, ObjectValue::Scalar(ScalarValue::Real(v)))
    }

    /// Creates a string model object with a committed initial value.
    pub fn create_str(&mut self, v: impl Into<String>) -> ObjectName {
        self.store.create_root(
            ObjectKind::Str,
            ObjectValue::Scalar(ScalarValue::Str(v.into())),
        )
    }

    /// Creates an empty list model object.
    pub fn create_list(&mut self) -> ObjectName {
        self.store
            .create_root(ObjectKind::List, ObjectValue::empty_list())
    }

    /// Creates an empty tuple model object.
    pub fn create_tuple(&mut self) -> ObjectName {
        self.store
            .create_root(ObjectKind::Tuple, ObjectValue::empty_tuple())
    }

    /// Creates an empty association object (§2.6).
    pub fn create_association(&mut self) -> ObjectName {
        self.store
            .create_root(ObjectKind::Association, ObjectValue::empty_assoc())
    }

    // ---- read-side conveniences (outside transactions) --------------------

    /// The latest *committed* integer value of `object`, if any.
    pub fn read_int_committed(&self, object: ObjectName) -> Option<i64> {
        let obj = self.store.get(object).ok()?;
        obj.values.latest_committed()?.value.as_scalar()?.as_int()
    }

    /// The current (possibly uncommitted) integer value of `object`.
    pub fn read_int_current(&self, object: ObjectName) -> Option<i64> {
        let obj = self.store.get(object).ok()?;
        obj.values.current()?.value.as_scalar()?.as_int()
    }

    /// The latest committed real value of `object`, if any.
    pub fn read_real_committed(&self, object: ObjectName) -> Option<f64> {
        let obj = self.store.get(object).ok()?;
        obj.values.latest_committed()?.value.as_scalar()?.as_real()
    }

    /// The current (possibly uncommitted) real value of `object`.
    pub fn read_real_current(&self, object: ObjectName) -> Option<f64> {
        let obj = self.store.get(object).ok()?;
        obj.values.current()?.value.as_scalar()?.as_real()
    }

    /// The latest committed string value of `object`, if any.
    pub fn read_str_committed(&self, object: ObjectName) -> Option<String> {
        let obj = self.store.get(object).ok()?;
        obj.values
            .latest_committed()?
            .value
            .as_scalar()?
            .as_str()
            .map(str::to_owned)
    }

    /// The current (possibly uncommitted) string value of `object`.
    pub fn read_str_current(&self, object: ObjectName) -> Option<String> {
        let obj = self.store.get(object).ok()?;
        obj.values
            .current()?
            .value
            .as_scalar()?
            .as_str()
            .map(str::to_owned)
    }

    /// The current children of a list object.
    pub fn list_children_current(&self, list: ObjectName) -> Vec<ObjectName> {
        self.store
            .get(list)
            .ok()
            .and_then(|o| o.values.current())
            .and_then(|e| {
                e.value
                    .as_list()
                    .map(|s| s.iter().map(|le| le.child).collect())
            })
            .unwrap_or_default()
    }

    /// The current keyed children of a tuple object.
    pub fn tuple_children_current(&self, tuple: ObjectName) -> Vec<(String, ObjectName)> {
        self.store
            .get(tuple)
            .ok()
            .and_then(|o| o.values.current())
            .and_then(|e| {
                e.value
                    .as_tuple()
                    .map(|m| m.iter().map(|(k, v)| (k.clone(), *v)).collect())
            })
            .unwrap_or_default()
    }

    /// Whether `object` exists at this site.
    pub fn object_exists(&self, object: ObjectName) -> bool {
        self.store.contains(object)
    }

    /// The kind of `object`, if it exists here.
    pub fn object_kind(&self, object: ObjectName) -> Option<ObjectKind> {
        self.store.get(object).ok().map(|o| o.kind)
    }

    /// Number of value-history entries currently retained for `object`
    /// (exposed for GC verification and benchmarks).
    pub fn history_len(&self, object: ObjectName) -> usize {
        self.store.get(object).map(|o| o.values.len()).unwrap_or(0)
    }

    /// Dumps a description of in-flight work (debugging/tests).
    #[doc(hidden)]
    pub fn debug_stuck(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (vt, p) in &self.pending {
            let _ = write!(
                out,
                "pending {vt}: awaiting={:?} rc={:?} delegate={:?}; ",
                p.awaiting, p.rc_waits, p.delegate_site
            );
        }
        for (from, p) in &self.buffered {
            let _ = write!(
                out,
                "buffered from={from} txn={} decided={:?} updates={:?} reads={}; ",
                p.txn,
                self.decided.get(&p.txn),
                p.updates
                    .iter()
                    .map(|u| format!("{:?} op={:?}", u.addr, u.op))
                    .collect::<Vec<_>>(),
                p.reads.len()
            );
        }
        if !self.joins.is_empty() {
            let _ = write!(out, "joins={}; ", self.joins.len());
        }
        if !self.graph_txns.is_empty() {
            let _ = write!(out, "graph_txns={}; ", self.graph_txns.len());
        }
        if !self.parked_snaps.is_empty() {
            let _ = write!(out, "parked={}; ", self.parked_snaps.len());
        }
        if !self.rejoin_awaiting.is_empty() {
            let _ = write!(out, "rejoin_awaiting={:?}; ", self.rejoin_awaiting);
        }
        if !self.rejoin_deferred.is_empty() {
            let _ = write!(out, "rejoin_deferred={}; ", self.rejoin_deferred.len());
        }
        out
    }

    /// Dumps `(vt, committed)` pairs of an object's value history (tests).
    #[doc(hidden)]
    pub fn debug_history(&self, object: ObjectName) -> Vec<(VirtualTime, bool)> {
        self.store
            .get(object)
            .map(|o| o.values.iter().map(|e| (e.vt, e.committed)).collect())
            .unwrap_or_default()
    }

    /// How many objects at this site carry their own replication graph
    /// (direct propagation mode) — the storage metric of the paper's §3.2
    /// space argument, exposed for the `a2_propagation` ablation.
    pub fn direct_graph_count(&self) -> usize {
        self.store
            .objects()
            .filter(|o| o.propagation == crate::object::PropagationMode::Direct)
            .count()
    }

    /// Total number of objects hosted at this site.
    pub fn object_count(&self) -> usize {
        self.store.objects().count()
    }

    /// Number of live write-free reservations held for `object` at this
    /// site (meaningful at its primary).
    pub fn reservation_count(&self, object: ObjectName) -> usize {
        self.store
            .get(object)
            .map(|o| o.value_reservations.len())
            .unwrap_or(0)
    }

    /// The replication graph currently governing `object`.
    ///
    /// # Errors
    ///
    /// Fails if the object does not exist here.
    pub fn replication_graph(&self, object: ObjectName) -> Result<ReplicationGraph, DecafError> {
        self.store.effective_graph(object).map(|(g, _)| g.clone())
    }

    /// The primary copy currently selected for `object`'s graph.
    ///
    /// # Errors
    ///
    /// Fails if the object does not exist here.
    pub fn primary_of(&self, object: ObjectName) -> Result<NodeRef, DecafError> {
        self.store.primary_of(object)
    }

    /// The final outcome of a transaction submitted here, if decided.
    pub fn txn_outcome(&self, handle: TxnHandle) -> Option<TxnOutcome> {
        self.handle_outcome.get(&handle.id).copied()
    }

    // ---- internal helpers shared across submodules -------------------------

    /// Mutable access to the store (crate-internal wiring support).
    pub(crate) fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    // ---- persistence support (crate-internal; see `persist`) ---------------

    pub(crate) fn store_objects(&self) -> impl Iterator<Item = &crate::object::ModelObject> {
        self.store.objects()
    }

    pub(crate) fn clock_snapshot(&self) -> LamportClock {
        self.clock.clone()
    }

    pub(crate) fn store_next_seq(&self) -> u64 {
        self.store.next_seq()
    }

    pub(crate) fn decided_snapshot(&self) -> &HashMap<VirtualTime, TxnOutcome> {
        &self.decided
    }

    pub(crate) fn next_relation_counter(&self) -> u64 {
        self.next_relation
    }

    pub(crate) fn restore_clock(&mut self, clock: LamportClock) {
        self.clock = clock;
    }

    pub(crate) fn restore_decided(&mut self, decided: HashMap<VirtualTime, TxnOutcome>) {
        self.decided = decided;
    }

    pub(crate) fn restore_relation_counter(&mut self, next: u64) {
        self.next_relation = next;
    }

    pub(crate) fn restore_store(
        &mut self,
        next_seq: u64,
        objects: impl Iterator<Item = crate::object::ModelObject>,
    ) {
        self.store.set_next_seq(next_seq);
        for obj in objects {
            self.store.insert_object(obj);
        }
    }

    /// Garbage-collects histories and reservations below the site's low
    ///-water mark (paper §3: "histories are garbage-collected as
    /// transactions commit").
    pub(crate) fn run_gc(&mut self) {
        // The low-water mark is the smallest VT any pending work may still
        // read: pending local txns, undecided remote txns, and undelivered
        // pessimistic snapshots.
        let mut low = VirtualTime::new(u64::MAX, SiteId(u32::MAX));
        for vt in self.pending.keys() {
            low = low.min(*vt);
        }
        for (vt, _) in self
            .remote
            .iter()
            .filter(|(vt, _)| !self.decided.contains_key(vt))
        {
            low = low.min(*vt);
        }
        for proxy in self.views.values() {
            if let Some(snap) = &proxy.opt {
                low = low.min(snap.ts);
            }
            if let Some((vt, _)) = proxy.pess.iter().next() {
                low = low.min(*vt);
            }
            // A pessimistic proxy may yet have to snapshot a committed
            // straggler anywhere above its monotonic frontier; its guess
            // lower bounds come from committed history entries, so nothing
            // newer than the frontier may be collected.
            if proxy.mode == ViewMode::Pessimistic {
                low = low.min(proxy.last_notified_vt);
            }
        }
        // Histories and reservations are the RL/NC evidence against
        // *racing* stale writes: a peer can still deliver a message with
        // any VT above the clock we last witnessed from it (links are
        // FIFO), so nothing above any live peer's horizon may be
        // collected. Everything below the horizon has provably reached
        // every replica, making retained-only checks exact.
        let mut peers: BTreeSet<SiteId> = BTreeSet::new();
        for obj in self.store.objects() {
            if let Some(e) = obj.graphs.current() {
                peers.extend(e.value.sites());
            }
        }
        peers.remove(&self.id);
        for peer in peers {
            if self.failed_sites.contains(&peer) {
                continue;
            }
            let seen = self.last_seen_from.get(&peer).copied().unwrap_or(0);
            low = low.min(VirtualTime::new(seen, peer));
        }
        let mut discarded = 0;
        for obj in self.store.objects_mut() {
            discarded += obj.values.gc(low);
            discarded += obj.graphs.gc(low);
            obj.value_reservations.gc(low);
            obj.graph_reservations.gc(low);
        }
        self.stats.gc_discarded += discarded as u64;
        // Record the sweep for the checker's straggler-view oracle. The
        // pessimistic frontier is recomputed here independently of the
        // `low` fold above, so `low <= pess_frontier` is a genuine
        // cross-check rather than true by construction.
        let mut pess_frontier: Option<VirtualTime> = None;
        for proxy in self.views.values() {
            if proxy.mode == ViewMode::Pessimistic {
                let f = proxy.last_notified_vt;
                pess_frontier = Some(pess_frontier.map_or(f, |p| p.min(f)));
            }
        }
        self.last_gc = Some(crate::oracle::GcWatermark {
            low,
            pess_frontier,
            discarded: discarded as u64,
        });
        if discarded > 0 {
            self.trace_emit(
                decaf_trace::TraceKind::GcSweep,
                Some(low),
                None,
                Some(discarded as u64),
            );
        }

        // Prune decided-outcome and remote-transaction records that no
        // in-flight message can still reference. Links are FIFO, so any
        // future message from peer S carries an envelope clock at least
        // `last_seen_from[S]`; keep a generous margin for the recovery
        // protocols, which may reference older transactions.
        let peer_min = self
            .last_seen_from
            .values()
            .copied()
            .min()
            .unwrap_or_else(|| self.clock.counter());
        let horizon = peer_min.saturating_sub(4096).min(low.lamport);
        // Order matters: drop decided remote records first (while the
        // decided table can still classify them), then decided outcomes not
        // referenced anywhere.
        self.remote
            .retain(|vt, _| vt.lamport >= horizon || !self.decided.contains_key(vt));
        self.decided.retain(|vt, _| {
            vt.lamport >= horizon || self.pending.contains_key(vt) || self.remote.contains_key(vt)
        });
    }
}
