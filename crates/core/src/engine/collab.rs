//! Dynamic collaboration establishment (paper §2.6, §3.3): relation
//! creation, invitations, the join protocol, and leaving.

use std::collections::BTreeSet;

use decaf_vt::{SiteId, VirtualTime};

use crate::collab::{GraphTxn, Invitation, JoinOp, JoinPhase, RelationId};
use crate::error::{DecafError, TxnError};
use crate::graph::{NodeRef, ReplicationGraph};
use crate::message::{Message, TreeSnapshot};
use crate::object::{ObjectName, Relation};
use crate::txn::{Transaction, TxnCtx, TxnOutcome};

use super::{EngineEvent, Site};

/// Mutation applied to an association object's relationships.
type AssocMutation = Box<dyn Fn(&mut std::collections::BTreeMap<RelationId, Relation>) + Send>;

/// Internal transaction: read-modify-write of an association object's
/// state (relation creation, membership bookkeeping).
struct AssocEdit {
    assoc: ObjectName,
    mutate: AssocMutation,
}

impl Transaction for AssocEdit {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let mut state = ctx.read_assoc_state(self.assoc)?;
        (self.mutate)(&mut state);
        ctx.write_assoc_state(self.assoc, state)
    }
}

impl Site {
    /// Installs an authorization monitor: invoked on each incoming join
    /// request, it may refuse access to sensitive objects ("users may also
    /// code authorization monitors to restrict access", §1).
    pub fn set_authorizer(&mut self, f: impl Fn(&Invitation, NodeRef) -> bool + Send + 'static) {
        self.authorizer = Some(Box::new(f));
    }

    /// Creates a replica relationship inside `assoc`, seeded with the local
    /// object `seed`. Returns the new relationship's id immediately; the
    /// association update commits through the normal transaction machinery.
    ///
    /// # Errors
    ///
    /// Fails if `assoc` is not an association object or `seed` is unknown.
    pub fn create_relation(
        &mut self,
        assoc: ObjectName,
        description: impl Into<String>,
        seed: ObjectName,
    ) -> Result<RelationId, DecafError> {
        self.store.get(seed)?;
        let obj = self.store.get(assoc)?;
        if obj.kind != crate::object::ObjectKind::Association {
            return Err(DecafError::KindMismatch {
                object: assoc,
                expected: "association",
            });
        }
        let id = RelationId(((self.id.0 as u64) << 32) | self.next_relation);
        self.next_relation += 1;
        let seed_node = NodeRef::new(self.id, seed);
        let description = description.into();
        self.execute(Box::new(AssocEdit {
            assoc,
            mutate: Box::new(move |state| {
                let rel = state.entry(id).or_default();
                rel.description = description.clone();
                rel.members.insert(seed_node);
            }),
        }));
        Ok(id)
    }

    /// Builds an invitation token for `relation`, contactable through this
    /// site's member object (§2.6: the token is then published out of
    /// band).
    ///
    /// # Errors
    ///
    /// Fails if the association or relation is unknown, or no local member
    /// exists to act as the contact.
    pub fn make_invitation(
        &self,
        assoc: ObjectName,
        relation: RelationId,
    ) -> Result<Invitation, DecafError> {
        let obj = self.store.get(assoc)?;
        let entry = obj
            .values
            .current()
            .ok_or(DecafError::Uninitialized(assoc))?;
        let state = entry.value.as_assoc().ok_or(DecafError::KindMismatch {
            object: assoc,
            expected: "association",
        })?;
        let rel = state.get(&relation).ok_or(DecafError::UnknownRelation)?;
        let contact = rel
            .members
            .iter()
            .find(|m| m.site == self.id)
            .copied()
            .ok_or(DecafError::UnknownRelation)?;
        Ok(Invitation {
            assoc: NodeRef::new(self.id, assoc),
            relation,
            contact,
        })
    }

    /// Joins the local object `local` into the replica relationship named
    /// by `invitation` (§3.3). The protocol runs asynchronously; completion
    /// is reported via [`EngineEvent::JoinCompleted`].
    ///
    /// # Errors
    ///
    /// Fails immediately if `local` does not exist at this site.
    pub fn join(
        &mut self,
        invitation: Invitation,
        local: ObjectName,
    ) -> Result<VirtualTime, DecafError> {
        self.store.get(local)?;
        // An embedded object that starts collaborating independently
        // switches to direct propagation (§3.2.2).
        self.ensure_direct(local);
        self.start_join(invitation, local, 8)
    }

    pub(crate) fn start_join(
        &mut self,
        invitation: Invitation,
        local: ObjectName,
        retries_left: u32,
    ) -> Result<VirtualTime, DecafError> {
        let vt = self.clock.next();
        let (graph, t_ga) = self.store.effective_graph(local)?;
        let a_graph = graph.clone();
        self.joins.insert(
            vt,
            JoinOp {
                local,
                invitation,
                phase: JoinPhase::AwaitingReply,
                t_ga,
                awaiting: 0,
                rc_waits: BTreeSet::new(),
                affected: BTreeSet::new(),
                adopted: Vec::new(),
                adopted_vt: VirtualTime::ZERO,
                denied: false,
                retries_left,
            },
        );
        self.send(
            invitation.contact.site,
            Message::JoinRequest {
                txn: vt,
                origin: self.id,
                relation: invitation.relation,
                a_node: NodeRef::new(self.id, local),
                a_graph,
                b_object: invitation.contact.object,
                assoc_object: (invitation.assoc.site == invitation.contact.site)
                    .then_some(invitation.assoc.object),
            },
        );
        Ok(vt)
    }

    /// Leaves every replica relationship: the local object reverts to a
    /// singleton graph and the remaining members' graphs drop its node.
    ///
    /// # Errors
    ///
    /// Fails if `local` does not exist at this site.
    pub fn leave(&mut self, local: ObjectName) -> Result<VirtualTime, DecafError> {
        let vt = self.clock.next();
        let (graph, t_g) = self.store.effective_graph(local)?;
        let graph = graph.clone();
        let self_node = NodeRef::new(self.id, local);
        if graph.len() <= 1 {
            return Ok(vt); // not collaborating
        }
        let primary = self
            .store
            .selector
            .primary(&graph)
            .ok_or(DecafError::UnknownRelation)?;
        let mut affected = BTreeSet::new();
        for node in graph.nodes() {
            if node.site == self.id {
                continue;
            }
            affected.insert(node.site);
            let remaining = graph.without_node(self_node, *node);
            self.send(
                node.site,
                Message::GraphUpdate {
                    txn: vt,
                    origin: self.id,
                    target: node.object,
                    graph: remaining,
                    t_g,
                    needs_check: node.site == primary.site,
                    adopt_value: None,
                    adopt_value_vt: VirtualTime::ZERO,
                },
            );
        }
        // The leaver's own graph becomes a singleton.
        if let Ok(obj) = self.store.get_mut(local) {
            obj.graphs
                .insert(vt, ReplicationGraph::singleton(self_node));
        }
        let mut awaiting = 0;
        if primary.site == self.id {
            // Local graph check: we are the primary.
            let ok = self.check_graph_and_reserve(local, t_g, vt);
            if !ok {
                // Roll back and report; leaving rarely conflicts.
                if let Ok(obj) = self.store.get_mut(local) {
                    obj.graphs.purge(vt);
                }
                return Err(DecafError::UnknownRelation);
            }
        } else {
            awaiting = 1;
        }
        self.graph_txns.insert(
            vt,
            GraphTxn {
                local,
                awaiting,
                affected,
                denied: false,
            },
        );
        self.maybe_finalize_graph_txn(vt);
        Ok(vt)
    }

    /// Forces `local` (possibly an embedded object) into direct-propagation
    /// mode with its own singleton graph.
    pub(crate) fn ensure_direct(&mut self, local: ObjectName) {
        let node = NodeRef::new(self.id, local);
        if let Ok(obj) = self.store.get_mut(local) {
            if obj.propagation == crate::object::PropagationMode::Indirect {
                obj.propagation = crate::object::PropagationMode::Direct;
                if obj.graphs.is_empty() {
                    obj.graphs
                        .insert_committed(VirtualTime::ZERO, ReplicationGraph::singleton(node));
                }
            }
        }
    }

    /// Graph-side RL + NC check and reservation at this (primary) site.
    pub(crate) fn check_graph_and_reserve(
        &mut self,
        target: ObjectName,
        t_g: VirtualTime,
        vt: VirtualTime,
    ) -> bool {
        if t_g > vt {
            return false;
        }
        {
            let Ok(obj) = self.store.get(target) else {
                return false;
            };
            if obj.graphs.has_write_in(t_g, vt) {
                return false;
            }
            if obj.graph_reservations.check_write(vt).is_err() {
                return false;
            }
        }
        if let Ok(obj) = self.store.get_mut(target) {
            obj.graph_reservations.reserve(t_g, vt, vt);
        }
        true
    }

    // ------------------------------------------------------------------
    // Protocol handlers
    // ------------------------------------------------------------------

    /// B's side of the join (§3.3): merge graphs, propagate to B's old
    /// replicas, update the association, reply to A.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_join_request(
        &mut self,
        txn: VirtualTime,
        origin: SiteId,
        relation: RelationId,
        a_node: NodeRef,
        a_graph: ReplicationGraph,
        b_object: ObjectName,
        assoc_object: Option<ObjectName>,
    ) {
        let invitation = Invitation {
            assoc: NodeRef::new(self.id, assoc_object.unwrap_or(b_object)),
            relation,
            contact: NodeRef::new(self.id, b_object),
        };
        let authorized = self
            .authorizer
            .as_ref()
            .map(|f| f(&invitation, a_node))
            .unwrap_or(true);
        let b_ok = authorized && self.store.contains(b_object);
        if !b_ok {
            self.send(
                origin,
                Message::JoinReply {
                    txn,
                    ok: false,
                    b_node: NodeRef::new(self.id, b_object),
                    merged: ReplicationGraph::default(),
                    b_value: None,
                    b_value_vt: VirtualTime::ZERO,
                    b_value_committed: true,
                    confirms_expected: 0,
                    extra_affected: Vec::new(),
                },
            );
            return;
        }
        self.ensure_direct(b_object);
        let b_node = NodeRef::new(self.id, b_object);
        let (g_b, t_gb) = match self.store.effective_graph(b_object) {
            Ok((g, t)) => (g.clone(), t),
            Err(_) => return,
        };
        let merged = g_b.joined_with(&a_graph, a_node, b_node, relation);
        let old_primary = self.store.selector.primary(&g_b);

        // B's value travels back for adoption by A's side.
        let (b_value, b_value_vt, b_value_committed) = {
            let obj = self.store.get(b_object).ok();
            let entry = obj.and_then(|o| o.values.current());
            match entry {
                Some(e) => (
                    self.store.tree_snapshot(b_object, None).ok(),
                    e.vt,
                    e.committed,
                ),
                None => (None, VirtualTime::ZERO, true),
            }
        };

        // Apply the merged graph at B (uncommitted until A's summary).
        if let Ok(obj) = self.store.get_mut(b_object) {
            obj.graphs.insert(txn, merged.clone());
        }
        self.remote.entry(txn).or_default().origin = origin;
        self.remote
            .get_mut(&txn)
            .expect("inserted above")
            .graph_objects
            .insert(b_object);

        let mut confirms_expected = 0u32;

        // Propagate the merged graph to B's old replicas; gB's primary
        // confirms directly to A ("the confirmation returned to A via a
        // separate message", §3.3).
        for node in g_b.nodes() {
            if node.site == self.id {
                continue;
            }
            self.send(
                node.site,
                Message::GraphUpdate {
                    txn,
                    origin,
                    target: node.object,
                    graph: merged.clone(),
                    t_g: t_gb,
                    needs_check: Some(node.site) == old_primary.map(|p| p.site),
                    adopt_value: None,
                    adopt_value_vt: VirtualTime::ZERO,
                },
            );
        }
        match old_primary {
            Some(p) if p.site == self.id => {
                // B hosts gB's primary: check locally and confirm to A.
                let ok = self.check_graph_and_reserve(b_object, t_gb, txn);
                confirms_expected += 1;
                let verdict = if ok {
                    Message::Confirm {
                        subject: txn,
                        kind: crate::message::SubjectKind::Txn,
                    }
                } else {
                    Message::Deny {
                        subject: txn,
                        kind: crate::message::SubjectKind::Txn,
                    }
                };
                self.send(origin, verdict);
            }
            Some(_) => {
                confirms_expected += 1;
            }
            None => {}
        }

        // Association membership update, committed with the join
        // transaction (condition (d) of §3.3).
        let mut extra_affected: Vec<SiteId> = Vec::new();
        if let Some(assoc) = assoc_object {
            if self.store.contains(assoc) {
                let state = self
                    .store
                    .get(assoc)
                    .ok()
                    .and_then(|o| o.values.current())
                    .and_then(|e| e.value.as_assoc().cloned());
                if let Some(mut state) = state {
                    let rel = state.entry(relation).or_default();
                    rel.members.insert(a_node);
                    let op = crate::message::WireOp::SetAssoc(crate::message::AssocSnapshot(state));
                    let assoc_graph = self
                        .store
                        .effective_graph(assoc)
                        .map(|(g, _)| g.clone())
                        .ok();
                    let _ = self.store.apply_wire_op(assoc, txn, &op);
                    self.remote
                        .get_mut(&txn)
                        .expect("inserted above")
                        .objects
                        .insert(assoc, txn);
                    // Propagate to association replicas, if any; its
                    // primary also confirms to A.
                    if let Some(g) = assoc_graph {
                        let assoc_primary = self.store.selector.primary(&g);
                        for node in g.nodes() {
                            if node.site == self.id {
                                continue;
                            }
                            extra_affected.push(node.site);
                            self.send(
                                node.site,
                                Message::Txn(crate::message::TxnPropagate {
                                    txn,
                                    origin,
                                    updates: vec![crate::message::UpdateItem {
                                        addr: crate::message::ObjectAddr::Direct(node.object),
                                        t_r: txn,
                                        t_g: VirtualTime::ZERO,
                                        op: op.clone(),
                                        needs_check: Some(node.site)
                                            == assoc_primary.map(|p| p.site),
                                    }],
                                    reads: vec![],
                                    delegate: None,
                                }),
                            );
                        }
                        match assoc_primary {
                            Some(p) if p.site == self.id => {
                                confirms_expected += 1;
                                // Blind write: NC check only.
                                let ok = self
                                    .store
                                    .get(assoc)
                                    .map(|o| o.value_reservations.check_write(txn).is_ok())
                                    .unwrap_or(false);
                                let verdict = if ok {
                                    Message::Confirm {
                                        subject: txn,
                                        kind: crate::message::SubjectKind::Txn,
                                    }
                                } else {
                                    Message::Deny {
                                        subject: txn,
                                        kind: crate::message::SubjectKind::Txn,
                                    }
                                };
                                self.send(origin, verdict);
                            }
                            Some(_) => confirms_expected += 1,
                            None => {}
                        }
                    }
                    let assoc_changed = vec![assoc];
                    self.schedule_optimistic(&assoc_changed);
                    self.create_pess_snapshots(txn, &[(assoc, txn)], false);
                }
            }
        }

        self.send(
            origin,
            Message::JoinReply {
                txn,
                ok: true,
                b_node,
                merged,
                b_value,
                b_value_vt,
                b_value_committed,
                confirms_expected,
                extra_affected,
            },
        );
    }

    /// A's processing of B's reply: adopt the merged graph and B's value,
    /// propagate to A's old replicas, and start waiting for confirmations.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_join_reply(
        &mut self,
        txn: VirtualTime,
        ok: bool,
        _b_node: NodeRef,
        merged: ReplicationGraph,
        b_value: Option<TreeSnapshot>,
        b_value_vt: VirtualTime,
        b_value_committed: bool,
        confirms_expected: u32,
        extra_affected: Vec<SiteId>,
    ) {
        let Some(op) = self.joins.get(&txn) else {
            return;
        };
        let local = op.local;
        let t_ga = op.t_ga;
        if !ok {
            self.joins.remove(&txn);
            self.events.push(EngineEvent::JoinCompleted {
                object: local,
                vt: txn,
                ok: false,
            });
            return;
        }

        // Adopt the merged graph and B's value at the join VT.
        let old_graph = self
            .store
            .effective_graph(local)
            .map(|(g, _)| g.clone())
            .unwrap_or_default();
        let a_primary = self.store.selector.primary(&old_graph);
        if let Ok(obj) = self.store.get_mut(local) {
            obj.graphs.insert(txn, merged.clone());
        }
        // The adopted value keeps the contact's original write VT so the
        // joiner's subsequent read intervals line up with the primary's
        // history (reading a value "at the join VT" would poison every RL
        // guess formed from it).
        let adopted_vt = if b_value_vt == VirtualTime::ZERO {
            txn
        } else {
            b_value_vt
        };
        let mut adopted: Vec<ObjectName> = Vec::new();
        if let Some(v) = &b_value {
            if let Ok(changed) = self.store.apply_wire_op(
                local,
                adopted_vt,
                &crate::message::WireOp::SetTree(v.clone()),
            ) {
                adopted = changed;
            }
        }

        // Propagate graph + adopted value to A's old replicas; gA's primary
        // confirms back to us.
        let mut awaiting = confirms_expected as i64;
        for node in old_graph.nodes() {
            if node.site == self.id {
                continue;
            }
            self.send(
                node.site,
                Message::GraphUpdate {
                    txn,
                    origin: self.id,
                    target: node.object,
                    graph: merged.clone(),
                    t_g: t_ga,
                    needs_check: Some(node.site) == a_primary.map(|p| p.site),
                    adopt_value: b_value.clone(),
                    adopt_value_vt: adopted_vt,
                },
            );
        }
        let mut denied = false;
        #[allow(clippy::collapsible_match)] // collapsing changes the Some(_) fallthrough
        match a_primary {
            Some(p) if p.site == self.id => {
                // gA's primary is this site: verify locally; a clean check
                // needs no further confirmation.
                if !self.check_graph_and_reserve(local, t_ga, txn) {
                    denied = true;
                }
            }
            Some(_) => awaiting += 1,
            None => {}
        }

        let mut rc_waits = BTreeSet::new();
        if !b_value_committed
            && self.decided.get(&b_value_vt) != Some(&TxnOutcome::Committed)
            && b_value_vt != VirtualTime::ZERO
        {
            rc_waits.insert(b_value_vt);
        }

        let mut affected: BTreeSet<SiteId> = merged.sites().filter(|s| *s != self.id).collect();
        affected.extend(extra_affected);

        {
            let op = self.joins.get_mut(&txn).expect("checked above");
            op.phase = JoinPhase::AwaitingConfirms;
            // Confirmations that raced ahead of the reply already
            // decremented the counter below zero.
            op.awaiting += awaiting;
            op.rc_waits = rc_waits;
            op.affected = affected;
            op.denied = denied || op.denied;
            op.adopted = adopted;
            op.adopted_vt = adopted_vt;
        }

        // The adopted value is a visible change.
        let changed = vec![local];
        self.schedule_optimistic(&changed);
        self.create_pess_snapshots(adopted_vt, &[(local, adopted_vt)], false);

        self.maybe_finalize_join(txn);
    }

    /// A replica receives a changed replication graph (join merge, leave,
    /// or failure repair via a live primary).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_graph_update(
        &mut self,
        txn: VirtualTime,
        origin: SiteId,
        target: ObjectName,
        graph: ReplicationGraph,
        t_g: VirtualTime,
        needs_check: bool,
        adopt_value: Option<TreeSnapshot>,
        adopt_value_vt: VirtualTime,
    ) {
        if self.decided.get(&txn) == Some(&TxnOutcome::Aborted) {
            return;
        }
        if !self.store.contains(target) {
            return;
        }
        if let Ok(obj) = self.store.get_mut(target) {
            obj.graphs.insert(txn, graph);
        }
        let entry = self.remote.entry(txn).or_default();
        entry.origin = origin;
        entry.graph_objects.insert(target);
        if let Some(v) = &adopt_value {
            // Adoption is applied at the contacted side's original value VT
            // so the adopting replica's later read intervals line up with
            // the primary's history.
            let at = if adopt_value_vt == VirtualTime::ZERO {
                txn
            } else {
                adopt_value_vt
            };
            let changed = self
                .store
                .apply_wire_op(target, at, &crate::message::WireOp::SetTree(v.clone()))
                .unwrap_or_default();
            let entry = self.remote.get_mut(&txn).expect("inserted above");
            for c in &changed {
                entry.adopted.push((*c, at));
            }
            self.schedule_optimistic(&changed);
            self.create_pess_snapshots(at, &[(target, at)], false);
        }
        if self.decided.get(&txn) == Some(&TxnOutcome::Committed) {
            if let Ok(obj) = self.store.get_mut(target) {
                obj.graphs.mark_committed(txn);
                obj.values.mark_committed(txn);
            }
            return;
        }
        if needs_check {
            let ok = self.check_graph_and_reserve(target, t_g, txn);
            let verdict = if ok {
                Message::Confirm {
                    subject: txn,
                    kind: crate::message::SubjectKind::Txn,
                }
            } else {
                Message::Deny {
                    subject: txn,
                    kind: crate::message::SubjectKind::Txn,
                }
            };
            self.send(origin, verdict);
        }
    }

    // ------------------------------------------------------------------
    // Confirmation plumbing shared by joins and graph transactions
    // ------------------------------------------------------------------

    pub(crate) fn on_collab_confirm(&mut self, subject: VirtualTime) {
        if let Some(op) = self.joins.get_mut(&subject) {
            op.awaiting -= 1; // may go negative before the JoinReply lands
            self.maybe_finalize_join(subject);
            return;
        }
        if let Some(op) = self.graph_txns.get_mut(&subject) {
            op.awaiting = op.awaiting.saturating_sub(1);
            self.maybe_finalize_graph_txn(subject);
        }
    }

    pub(crate) fn on_collab_deny(&mut self, subject: VirtualTime) {
        if self.joins.contains_key(&subject) {
            self.abort_join(subject, true);
            return;
        }
        if self.graph_txns.contains_key(&subject) {
            self.abort_graph_txn(subject);
        }
    }

    pub(crate) fn on_collab_commit_summary(&mut self, txn: VirtualTime) {
        // Defensive: a summary commit for an operation we originated.
        if self.joins.contains_key(&txn) {
            self.finalize_join(txn, false);
        }
        if self.graph_txns.contains_key(&txn) {
            self.finalize_graph_txn(txn, false);
        }
    }

    pub(crate) fn on_collab_abort_summary(&mut self, txn: VirtualTime) {
        if self.joins.contains_key(&txn) {
            self.abort_join(txn, false);
        }
        if self.graph_txns.contains_key(&txn) {
            self.abort_graph_txn(txn);
        }
    }

    pub(crate) fn maybe_finalize_join(&mut self, txn: VirtualTime) {
        let ready = match self.joins.get(&txn) {
            Some(op) => {
                op.phase == JoinPhase::AwaitingConfirms
                    && op.awaiting <= 0
                    && op.rc_waits.is_empty()
                    && !op.denied
            }
            None => false,
        };
        if ready {
            self.finalize_join(txn, true);
        } else if self.joins.get(&txn).map(|o| o.denied).unwrap_or(false) {
            self.abort_join(txn, true);
        }
    }

    fn finalize_join(&mut self, txn: VirtualTime, broadcast: bool) {
        let Some(op) = self.joins.remove(&txn) else {
            return;
        };
        self.decided.insert(txn, TxnOutcome::Committed);
        if let Ok(obj) = self.store.get_mut(op.local) {
            obj.graphs.mark_committed(txn);
        }
        for o in &op.adopted {
            if let Ok(obj) = self.store.get_mut(*o) {
                obj.values.mark_committed(op.adopted_vt);
            }
        }
        if broadcast {
            for site in &op.affected {
                self.send(*site, Message::Commit { txn });
            }
        }
        self.events.push(EngineEvent::JoinCompleted {
            object: op.local,
            vt: txn,
            ok: true,
        });
        self.events.push(EngineEvent::TxnCommitted {
            vt: txn,
            local_origin: true,
        });
        self.resolve_rc_commit(txn);
        let coverage: std::collections::BTreeMap<ObjectName, VirtualTime> =
            [(op.local, txn)].into_iter().collect();
        self.on_committed_update(txn, self.id, &coverage);
        self.run_gc();
    }

    fn abort_join(&mut self, txn: VirtualTime, broadcast: bool) {
        let Some(op) = self.joins.remove(&txn) else {
            return;
        };
        self.decided.insert(txn, TxnOutcome::Aborted);
        if let Ok(obj) = self.store.get_mut(op.local) {
            obj.graphs.purge(txn);
        }
        self.store.purge_write(op.local, op.adopted_vt);
        if broadcast {
            for site in &op.affected {
                self.send(*site, Message::Abort { txn });
            }
            // The contact may not be in `affected` yet (deny before reply).
            if !op.affected.contains(&op.invitation.contact.site) {
                self.send(op.invitation.contact.site, Message::Abort { txn });
            }
        }
        let objects = vec![op.local];
        self.on_aborted_update(txn, &objects);
        if op.retries_left > 0 {
            self.stats.retries += 1;
            let _ = self.start_join(op.invitation, op.local, op.retries_left - 1);
        } else {
            self.events.push(EngineEvent::JoinCompleted {
                object: op.local,
                vt: txn,
                ok: false,
            });
        }
    }

    pub(crate) fn maybe_finalize_graph_txn(&mut self, txn: VirtualTime) {
        let ready = match self.graph_txns.get(&txn) {
            Some(op) => op.awaiting == 0 && !op.denied,
            None => false,
        };
        if ready {
            self.finalize_graph_txn(txn, true);
        }
    }

    fn finalize_graph_txn(&mut self, txn: VirtualTime, broadcast: bool) {
        let Some(op) = self.graph_txns.remove(&txn) else {
            return;
        };
        self.decided.insert(txn, TxnOutcome::Committed);
        if let Ok(obj) = self.store.get_mut(op.local) {
            obj.graphs.mark_committed(txn);
        }
        if broadcast {
            for site in &op.affected {
                self.send(*site, Message::Commit { txn });
            }
        }
        self.events.push(EngineEvent::TxnCommitted {
            vt: txn,
            local_origin: true,
        });
        self.run_gc();
    }

    fn abort_graph_txn(&mut self, txn: VirtualTime) {
        let Some(op) = self.graph_txns.remove(&txn) else {
            return;
        };
        self.decided.insert(txn, TxnOutcome::Aborted);
        if let Ok(obj) = self.store.get_mut(op.local) {
            obj.graphs.purge(txn);
        }
        for site in &op.affected {
            self.send(*site, Message::Abort { txn });
        }
        self.events.push(EngineEvent::TxnAborted {
            vt: txn,
            local_origin: true,
            retried: false,
        });
    }

    pub(crate) fn resolve_join_rc_commit(&mut self, committed: VirtualTime) {
        let waiting: Vec<VirtualTime> = self
            .joins
            .iter()
            .filter(|(_, op)| op.rc_waits.contains(&committed))
            .map(|(vt, _)| *vt)
            .collect();
        for vt in waiting {
            if let Some(op) = self.joins.get_mut(&vt) {
                op.rc_waits.remove(&committed);
            }
            self.maybe_finalize_join(vt);
        }
    }

    pub(crate) fn cascade_join_rc_abort(&mut self, aborted: VirtualTime) {
        let waiting: Vec<VirtualTime> = self
            .joins
            .iter()
            .filter(|(_, op)| op.rc_waits.contains(&aborted))
            .map(|(vt, _)| *vt)
            .collect();
        for vt in waiting {
            self.abort_join(vt, true);
        }
    }
}
