//! Client-failure handling (paper §3.4): in-doubt transaction resolution
//! after an originator failure, and replication-graph repair — through the
//! (live) primary's fast path or the consensus fallback when the primary
//! itself failed.

use std::collections::{BTreeMap, BTreeSet};

use decaf_trace::TraceKind;
use decaf_vt::{SiteId, VirtualTime};

use crate::graph::{NodeRef, ReplicationGraph};
use crate::message::Message;
use crate::object::{ObjectName, PropagationMode};
use crate::txn::{Transaction, TxnOutcome};

use super::{ConsensusState, EngineEvent, OutcomeQueryState, Site};

impl Site {
    /// Reacts to a fail-stop notification from the communication layer
    /// (§3.4): resolves in-doubt transactions the failed site originated,
    /// aborts local transactions stuck on it, and repairs every replication
    /// graph that included it.
    pub fn notify_site_failed(&mut self, failed: SiteId) {
        if !self.failed_sites.insert(failed) {
            return; // duplicate notification
        }
        self.trace_emit(TraceKind::SiteFailed, None, Some(failed), None);

        self.resolve_in_doubt(failed);
        self.abort_stuck_on(failed);
        self.repair_graphs(failed);
        self.reap_failed_from_protocols(failed);

        // A rejoin in flight must not wedge on a peer that died before
        // acknowledging: drop it from the awaiting set and finish the
        // rejoin if it was the last one outstanding.
        if self.rejoin_awaiting.remove(&failed) && self.rejoin_awaiting.is_empty() {
            self.finish_rejoin();
        }

        self.events.push(EngineEvent::SiteFailureHandled { failed });
    }

    /// "The remaining sites, upon failure notification, simply determine if
    /// any of them received a commit message regarding the transaction. If
    /// so, the transaction is committed at all the sites; else, it is
    /// aborted" (§3.4). The lowest surviving replica site coordinates.
    fn resolve_in_doubt(&mut self, failed: SiteId) {
        let in_doubt: Vec<VirtualTime> = self
            .remote
            .iter()
            .filter(|(vt, r)| r.origin == failed && !self.decided.contains_key(vt))
            .map(|(vt, _)| *vt)
            .collect();
        for vt in in_doubt {
            // Every in-doubt survivor runs the query; duplicate rounds are
            // idempotent and always reach the same verdict because any
            // commit record is visible to every query.
            let members = self.replica_sites_of_txn(vt);
            let alive: BTreeSet<SiteId> = members
                .into_iter()
                .filter(|s| !self.failed_sites.contains(s))
                .collect();
            let expecting: BTreeSet<SiteId> = alive.into_iter().filter(|s| *s != self.id).collect();
            if expecting.is_empty() {
                // Only we survive: nothing committed here, so abort.
                self.apply_outcome_decision(vt, TxnOutcome::Aborted, &BTreeSet::new());
                continue;
            }
            for site in &expecting {
                self.send(
                    *site,
                    Message::OutcomeQuery {
                        txn: vt,
                        asker: self.id,
                    },
                );
            }
            self.outcome_queries.insert(
                vt,
                OutcomeQueryState {
                    expecting,
                    any_commit: false,
                },
            );
        }
    }

    /// "If the primary site fails before the transaction commits, the
    /// transaction is aborted; it is retried later after the graph update
    /// has committed" (§3.4).
    fn abort_stuck_on(&mut self, failed: SiteId) {
        let stuck: Vec<VirtualTime> = self
            .pending
            .iter()
            .filter(|(_, p)| p.awaiting.contains(&failed) || p.delegate_site == Some(failed))
            .map(|(vt, _)| *vt)
            .collect();
        for vt in stuck {
            let delegated = self
                .pending
                .get(&vt)
                .and_then(|p| p.delegate_site)
                .is_some();
            if delegated {
                // The delegate may have broadcast COMMIT before dying; ask
                // the other affected sites before deciding.
                let affected: BTreeSet<SiteId> = self
                    .pending
                    .get(&vt)
                    .map(|p| p.affected.clone())
                    .unwrap_or_default();
                let expecting: BTreeSet<SiteId> = affected
                    .into_iter()
                    .filter(|s| *s != self.id && !self.failed_sites.contains(s))
                    .collect();
                if expecting.is_empty() {
                    self.abort_and_queue_retry(vt);
                    continue;
                }
                for site in &expecting {
                    self.send(
                        *site,
                        Message::OutcomeQuery {
                            txn: vt,
                            asker: self.id,
                        },
                    );
                }
                self.outcome_queries.insert(
                    vt,
                    OutcomeQueryState {
                        expecting,
                        any_commit: false,
                    },
                );
            } else {
                // We are the only possible committer and have not committed:
                // abort is safe; retry once the graph repair lands.
                self.abort_and_queue_retry(vt);
            }
        }
    }

    /// Aborts a pending local transaction, keeping its body for re-execution
    /// after graph repair.
    fn abort_and_queue_retry(&mut self, vt: VirtualTime) {
        let Some(p) = self.pending.remove(&vt) else {
            return;
        };
        self.decided.insert(vt, TxnOutcome::Aborted);
        for obj in &p.touched {
            self.store.purge_write(*obj, vt);
        }
        let reserved = p.reserved_local.clone();
        self.release_local_reservations(&reserved, vt);
        for site in &p.affected {
            if !self.failed_sites.contains(site) {
                self.send(*site, Message::Abort { txn: vt });
            }
        }
        self.stats.txns_aborted_conflict += 1;
        self.events.push(EngineEvent::TxnAborted {
            vt,
            local_origin: true,
            retried: true,
        });
        let touched: Vec<ObjectName> = p.touched.iter().copied().collect();
        self.on_aborted_update(vt, &touched);
        self.cascade_rc_abort(vt);
        self.retry_after_repair.push((p.handle_id, p.txn));
    }

    /// Repairs every local direct object whose graph included the failed
    /// site (§3.4).
    fn repair_graphs(&mut self, failed: SiteId) {
        let candidates: Vec<ObjectName> = self
            .store
            .objects()
            .filter(|o| o.propagation == PropagationMode::Direct)
            .filter(|o| {
                o.graphs
                    .current()
                    .map(|e| e.value.nodes().any(|n| n.site == failed))
                    .unwrap_or(false)
            })
            .map(|o| o.name)
            .collect();

        for obj in candidates {
            let Ok((graph, t_g)) = self.store.effective_graph(obj) else {
                continue;
            };
            let graph = graph.clone();
            let self_node = NodeRef::new(self.id, obj);
            if !graph.contains(self_node) {
                continue;
            }
            let Some(old_primary) = self.store.selector.primary(&graph) else {
                continue;
            };
            if self.failed_sites.contains(&old_primary.site) {
                // Circularity: the primary needed to commit the graph update
                // is gone — fall back to the consensus protocol (§3.4).
                self.start_graph_consensus(obj, &graph);
            } else if old_primary.site == self.id {
                // We are the live primary: coordinate a normal timestamped
                // graph-update transaction.
                self.primary_repair(obj, &graph, t_g);
            }
            // Other survivors wait for the primary or the coordinator.
        }
        self.flush_repair_retries_if_clean();
    }

    /// Fast-path repair when this site hosts the live primary.
    fn primary_repair(&mut self, obj: ObjectName, graph: &ReplicationGraph, t_g: VirtualTime) {
        let vt = self.clock.next();
        let self_node = NodeRef::new(self.id, obj);
        let mut alive_members: Vec<NodeRef> = Vec::new();
        for node in graph.nodes() {
            if !self.failed_sites.contains(&node.site) {
                alive_members.push(*node);
            }
        }
        let my_graph = self.prune_failed(graph, self_node);
        if !self.check_graph_and_reserve(obj, t_g, vt) {
            return; // a concurrent graph txn is in flight; it will settle
        }
        if let Ok(o) = self.store.get_mut(obj) {
            o.graphs.insert(vt, my_graph);
        }
        let mut affected = BTreeSet::new();
        for node in &alive_members {
            if node.site == self.id {
                continue;
            }
            affected.insert(node.site);
            let their_graph = self.prune_failed(graph, *node);
            self.send(
                node.site,
                Message::GraphUpdate {
                    txn: vt,
                    origin: self.id,
                    target: node.object,
                    graph: their_graph,
                    t_g,
                    needs_check: false,
                    adopt_value: None,
                    adopt_value_vt: VirtualTime::ZERO,
                },
            );
        }
        self.graph_txns.insert(
            vt,
            crate::collab::GraphTxn {
                local: obj,
                awaiting: 0,
                affected,
                denied: false,
            },
        );
        self.maybe_finalize_graph_txn(vt);
    }

    fn prune_failed(&self, graph: &ReplicationGraph, keep: NodeRef) -> ReplicationGraph {
        let mut g = graph.clone();
        let failed: Vec<SiteId> = self.failed_sites.iter().copied().collect();
        for site in failed {
            g = g.without_site(site, keep);
        }
        g
    }

    /// Starts the consensus fallback; only the lowest surviving member site
    /// coordinates (§3.4: "the remaining sites use a distributed consensus
    /// protocol").
    fn start_graph_consensus(&mut self, obj: ObjectName, graph: &ReplicationGraph) {
        let alive: BTreeSet<SiteId> = graph
            .sites()
            .filter(|s| !self.failed_sites.contains(s))
            .collect();
        let Some(&coordinator) = alive.iter().next() else {
            return;
        };
        if coordinator != self.id {
            return;
        }
        // Abort conflicting local work on this object first.
        self.abort_conflicting_pending(obj);

        let at = self.clock.next();
        let ballot = self.next_ballot;
        self.next_ballot += 1;
        let self_node = NodeRef::new(self.id, obj);
        let targets: BTreeMap<SiteId, ObjectName> = graph
            .nodes()
            .filter(|n| alive.contains(&n.site) && n.site != self.id)
            .map(|n| (n.site, n.object))
            .collect();
        let repaired = self.prune_failed(graph, self_node);
        let awaiting: BTreeSet<SiteId> = targets.keys().copied().collect();

        if awaiting.is_empty() {
            // Sole survivor: apply directly.
            if let Ok(o) = self.store.get_mut(obj) {
                o.graphs.insert_committed(at, repaired);
            }
            return;
        }
        for (site, target) in &targets {
            self.send(
                *site,
                Message::GraphPropose {
                    ballot,
                    coordinator: self.id,
                    target: *target,
                    coord_target: obj,
                    graph: self.prune_failed(graph, NodeRef::new(*site, *target)),
                    at,
                },
            );
        }
        self.consensus.insert(
            ballot,
            ConsensusState {
                object: obj,
                graph: repaired,
                at,
                awaiting,
                targets,
            },
        );
    }

    /// Aborts (and queues for retry) local pending transactions touching
    /// `obj` — the consensus round must start from a clean slate ("abort
    /// any other transactions that conflict with the replication graph
    /// update transaction", §3.4).
    fn abort_conflicting_pending(&mut self, obj: ObjectName) {
        let conflicting: Vec<VirtualTime> = self
            .pending
            .iter()
            .filter(|(_, p)| p.touched.contains(&obj) || p.reserved_local.contains(&obj))
            .map(|(vt, _)| *vt)
            .collect();
        for vt in conflicting {
            self.abort_and_queue_retry(vt);
        }
    }

    /// Re-executes transactions parked on graph repair once no repair is in
    /// flight.
    fn flush_repair_retries_if_clean(&mut self) {
        if !self.consensus.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.retry_after_repair);
        let budget = self.config.retry_budget;
        for (handle_id, txn) in parked {
            self.stats.retries += 1;
            self.run_attempt(handle_id, txn, budget);
        }
    }

    /// Drops failed sites from in-flight recovery protocols and re-checks
    /// their completion ("the protocol is repeated until all the fail
    /// notifications are successfully applied", §3.4).
    fn reap_failed_from_protocols(&mut self, failed: SiteId) {
        // Outcome queries no longer expect answers from the dead.
        let decided_queries: Vec<VirtualTime> = {
            let mut done = Vec::new();
            for (vt, q) in self.outcome_queries.iter_mut() {
                q.expecting.remove(&failed);
                if q.expecting.is_empty() {
                    done.push(*vt);
                }
            }
            done
        };
        for vt in decided_queries {
            self.finish_outcome_query(vt);
        }
        // Consensus rounds stop waiting for the dead.
        let ready: Vec<u64> = {
            let mut done = Vec::new();
            for (ballot, c) in self.consensus.iter_mut() {
                c.awaiting.remove(&failed);
                c.targets.remove(&failed);
                if c.awaiting.is_empty() {
                    done.push(*ballot);
                }
            }
            done
        };
        for ballot in ready {
            self.apply_consensus(ballot);
        }
        // Pending local transactions no longer await the dead primary's
        // confirm (handled in abort_stuck_on), but joins might:
        let dead_joins: Vec<VirtualTime> = self
            .joins
            .iter()
            .filter(|(_, op)| op.invitation.contact.site == failed)
            .map(|(vt, _)| *vt)
            .collect();
        for vt in dead_joins {
            self.on_collab_abort_summary(vt);
        }
    }

    // ------------------------------------------------------------------
    // Recovery message handlers
    // ------------------------------------------------------------------

    pub(crate) fn on_outcome_query(&mut self, txn: VirtualTime, asker: SiteId) {
        self.send(
            asker,
            Message::OutcomeReport {
                txn,
                outcome: self.decided.get(&txn).copied(),
            },
        );
    }

    pub(crate) fn on_outcome_report(
        &mut self,
        from: SiteId,
        txn: VirtualTime,
        outcome: Option<TxnOutcome>,
    ) {
        let done = {
            let Some(q) = self.outcome_queries.get_mut(&txn) else {
                return;
            };
            if outcome == Some(TxnOutcome::Committed) {
                q.any_commit = true;
            }
            q.expecting.remove(&from);
            q.expecting.is_empty()
        };
        if done {
            self.finish_outcome_query(txn);
        }
    }

    fn finish_outcome_query(&mut self, txn: VirtualTime) {
        let Some(q) = self.outcome_queries.remove(&txn) else {
            return;
        };
        let outcome = if q.any_commit {
            TxnOutcome::Committed
        } else {
            TxnOutcome::Aborted
        };
        // Inform the other survivors, then apply locally.
        let members: BTreeSet<SiteId> = self
            .replica_sites_of_txn(txn)
            .into_iter()
            .filter(|s| *s != self.id && !self.failed_sites.contains(s))
            .collect();
        for site in members.iter() {
            self.send(*site, Message::OutcomeDecision { txn, outcome });
        }
        self.apply_outcome_decision(txn, outcome, &members);
    }

    pub(crate) fn on_outcome_decision(&mut self, txn: VirtualTime, outcome: TxnOutcome) {
        if self.decided.get(&txn) == Some(&outcome) && !self.pending.contains_key(&txn) {
            return;
        }
        self.apply_outcome_decision(txn, outcome, &BTreeSet::new());
    }

    fn apply_outcome_decision(
        &mut self,
        txn: VirtualTime,
        outcome: TxnOutcome,
        _informed: &BTreeSet<SiteId>,
    ) {
        match outcome {
            TxnOutcome::Committed => self.on_commit(txn),
            TxnOutcome::Aborted => {
                if self.pending.contains_key(&txn) {
                    // Our own delegated transaction: abort and park for
                    // retry after graph repair.
                    self.abort_and_queue_retry(txn);
                } else {
                    self.decided.insert(txn, TxnOutcome::Aborted);
                    self.rollback_remote(txn);
                }
            }
        }
    }

    pub(crate) fn on_graph_propose(
        &mut self,
        ballot: u64,
        coordinator: SiteId,
        target: ObjectName,
        coord_target: ObjectName,
        graph: ReplicationGraph,
        at: VirtualTime,
    ) {
        // Commit transactions known committed, abort conflicting ones
        // (§3.4), then accept.
        self.abort_conflicting_pending(target);
        if self.store.contains(target) {
            if let Ok(o) = self.store.get_mut(target) {
                o.graphs.insert_committed(at, graph);
            }
        }
        self.send(
            coordinator,
            Message::GraphAck {
                ballot,
                coord_target,
            },
        );
    }

    pub(crate) fn on_graph_ack(&mut self, from: SiteId, ballot: u64, _coord_target: ObjectName) {
        let done = {
            let Some(c) = self.consensus.get_mut(&ballot) else {
                return;
            };
            c.awaiting.remove(&from);
            c.awaiting.is_empty()
        };
        if done {
            self.apply_consensus(ballot);
        }
    }

    fn apply_consensus(&mut self, ballot: u64) {
        let Some(c) = self.consensus.remove(&ballot) else {
            return;
        };
        if let Ok(o) = self.store.get_mut(c.object) {
            o.graphs.insert_committed(c.at, c.graph.clone());
        }
        for (site, target) in &c.targets {
            self.send(
                *site,
                Message::GraphApply {
                    ballot,
                    target: *target,
                    graph: c.graph.clone(),
                    at: c.at,
                },
            );
        }
        self.flush_repair_retries_if_clean();
    }

    pub(crate) fn on_graph_apply(
        &mut self,
        _ballot: u64,
        target: ObjectName,
        graph: ReplicationGraph,
        at: VirtualTime,
    ) {
        if let Ok(o) = self.store.get_mut(target) {
            o.graphs.insert_committed(at, graph);
        }
        self.flush_repair_retries_if_clean();
    }

    /// Union of replica sites across the objects a transaction touched at
    /// this site.
    fn replica_sites_of_txn(&self, vt: VirtualTime) -> BTreeSet<SiteId> {
        let mut sites = BTreeSet::new();
        if let Some(r) = self.remote.get(&vt) {
            for obj in r.objects.keys().chain(r.graph_objects.iter()) {
                if let Ok((g, _)) = self.store.effective_graph(*obj) {
                    sites.extend(g.sites());
                }
            }
            sites.insert(r.origin);
        }
        if let Some(p) = self.pending.get(&vt) {
            sites.extend(p.affected.iter().copied());
            sites.insert(self.id);
        }
        sites
    }

    /// Injects a transaction to retry after repair (used by tests).
    #[doc(hidden)]
    pub fn queue_retry_after_repair(&mut self, txn: Box<dyn Transaction>) {
        let handle_id = self.next_handle;
        self.next_handle += 1;
        self.retry_after_repair.push((handle_id, txn));
    }
}
