//! DECAF: a Rust reproduction of *Concurrency Control and View Notification
//! Algorithms for Collaborative Replicated Objects* (Strom, Banavar, Miller,
//! Prakash, Ward — ICDCS '97 / IEEE TC 47(4), 1998).
//!
//! DECAF extends the Model-View-Controller paradigm for synchronous
//! distributed groupware: **model objects** hold replicated application
//! state, **transactions** atomically update sets of model objects, and
//! **view objects** observe them through consistent snapshots that are
//! either *optimistic* (immediate, lossy, superseded on rollback) or
//! *pessimistic* (committed values only, lossless, monotonic).
//!
//! The concurrency-control algorithm synthesizes two techniques:
//!
//! 1. **Optimistic guess propagation** (Strom–Yemini): a transaction runs
//!    immediately at its originating site under *read-committed* (RC),
//!    *read-latest* (RL), and *no-conflict* (NC) guesses, rolling back and
//!    automatically re-executing if a guess is denied.
//! 2. **Primary-copy replication** (Chu–Hellerstein): each replication graph
//!    maps — by a pure function, with no election — to one *primary copy*
//!    whose site validates the RL/NC guesses, so commit needs one round
//!    trip to a handful of primaries instead of a global sweep.
//!
//! # Architecture
//!
//! The central type is [`Site`]: a **sans-I/O state machine** representing
//! one collaborating application instance. A site consumes protocol
//! [`Message`]s via [`Site::handle_message`], executes local
//! [`Transaction`]s via [`Site::execute`], and emits outgoing messages
//! through [`Site::drain_outbox`]. Any transport can carry the messages;
//! the `decaf-net` crate provides a deterministic simulator and a threaded
//! transport.
//!
//! # Quickstart
//!
//! ```
//! use decaf_core::{wiring, ObjectName, Site, Transaction, TxnCtx, TxnError};
//! use decaf_vt::SiteId;
//!
//! // Two sites sharing a replicated integer.
//! let mut a = Site::new(SiteId(1));
//! let mut b = Site::new(SiteId(2));
//! let obj_a = a.create_int(0);
//! let obj_b = b.create_int(0);
//! wiring::wire_pair(&mut a, obj_a, &mut b, obj_b);
//!
//! // A transaction incrementing the counter, originated at site A.
//! struct Incr(ObjectName);
//! impl Transaction for Incr {
//!     fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
//!         let v = ctx.read_int(self.0)?;
//!         ctx.write_int(self.0, v + 1)?;
//!         Ok(())
//!     }
//! }
//! a.execute(Box::new(Incr(obj_a)));
//!
//! // Deliver the protocol messages (normally a transport's job).
//! wiring::run_to_quiescence(&mut [&mut a, &mut b]);
//! assert_eq!(a.read_int_committed(obj_a), Some(1));
//! assert_eq!(b.read_int_committed(obj_b), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collab;
mod engine;
mod error;
mod graph;
mod message;
mod object;
mod oracle;
mod persist;
mod stats;
mod store;
mod txn;
mod value;
mod view;
pub mod wiring;

pub use collab::{Invitation, RelationId, RelationInfo};
pub use engine::{EngineEvent, Site, SiteConfig};
pub use error::{DecafError, TxnError};
pub use graph::{NodeRef, PrimarySelector, ReplicationGraph};
pub use message::{
    AssocSnapshot, Delegate, Envelope, Message, ObjectAddr, Path, PathElem, ReadItem, SpanCtx,
    SubjectKind, TreeSnapshot, TxnPropagate, UpdateItem, WireOp,
};
pub use object::{Blueprint, ObjectKind, ObjectName};
pub use oracle::{CommittedDigest, GcWatermark, TestMutation, ViewLedgerEntry, ViewLedgerKind};
pub use persist::{
    append_frame, crc32, scan_wal, Checkpoint, CheckpointError, CommitLog, CommitRecord,
    ObjectCheckpoint, Recovery, WalError, WalRecord, WalScan, WAL_FORMAT_VERSION,
};
pub use stats::{SiteStats, TransportStats};
// Re-exported so engine users can enable tracing ([`Site::set_trace_sink`])
// without naming `decaf-trace` in their own dependency list.
pub use decaf_trace::{SinkSummary, TraceEvent, TraceKind, TraceSink};
pub use txn::{AbortReason, Transaction, TxnCtx, TxnHandle, TxnOutcome};
pub use value::ScalarValue;
pub use view::{
    RecordingView, SnapshotReader, UpdateNotification, View, ViewEvent, ViewId, ViewMode,
};
