//! Error types.

use std::error::Error;
use std::fmt;

use crate::object::ObjectName;

/// Errors surfaced by the DECAF infrastructure to application code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecafError {
    /// The named object does not exist at this site.
    NoSuchObject(ObjectName),
    /// An operation was applied to an object of the wrong kind (e.g. a list
    /// operation on a scalar).
    KindMismatch {
        /// The object operated on.
        object: ObjectName,
        /// What the operation expected, e.g. `"list"`.
        expected: &'static str,
    },
    /// A composite index or key was out of range / absent.
    NoSuchChild {
        /// The composite object.
        object: ObjectName,
        /// Human-readable description of the missing child.
        detail: String,
    },
    /// The object has no value yet (history empty).
    Uninitialized(ObjectName),
    /// A collaboration operation referenced an unknown relation or
    /// invitation.
    UnknownRelation,
}

impl fmt::Display for DecafError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecafError::NoSuchObject(o) => write!(f, "no such model object {o}"),
            DecafError::KindMismatch { object, expected } => {
                write!(f, "model object {object} is not a {expected}")
            }
            DecafError::NoSuchChild { object, detail } => {
                write!(f, "composite {object} has no child {detail}")
            }
            DecafError::Uninitialized(o) => write!(f, "model object {o} has no value"),
            DecafError::UnknownRelation => write!(f, "unknown replica relationship"),
        }
    }
}

impl Error for DecafError {}

/// Error returned from a [`Transaction::execute`](crate::Transaction::execute)
/// body.
///
/// A transaction body may fail either because the infrastructure rejected an
/// operation ([`TxnError::Decaf`]) or because the application decided to
/// abort — the paper's "explicitly programmed to be aborted without retry by
/// throwing an exception within the transaction" (§2.4). Both cause the
/// transaction to abort *without retry*; `handle_abort` is then called.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// Infrastructure error during an object operation.
    Decaf(DecafError),
    /// Application-initiated abort with a message (the analogue of throwing
    /// an exception inside `execute`).
    Application(String),
}

impl TxnError {
    /// Convenience constructor for an application-initiated abort.
    pub fn app(msg: impl Into<String>) -> Self {
        TxnError::Application(msg.into())
    }
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Decaf(e) => write!(f, "{e}"),
            TxnError::Application(m) => write!(f, "transaction aborted by application: {m}"),
        }
    }
}

impl Error for TxnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TxnError::Decaf(e) => Some(e),
            TxnError::Application(_) => None,
        }
    }
}

impl From<DecafError> for TxnError {
    fn from(e: DecafError) -> Self {
        TxnError::Decaf(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decaf_vt::SiteId;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let o = ObjectName::new(SiteId(1), 3);
        let e = DecafError::NoSuchObject(o);
        assert!(e.to_string().starts_with("no such model object"));
        let t: TxnError = e.into();
        assert!(t.to_string().contains("no such model object"));
        assert!(TxnError::app("balance too low")
            .to_string()
            .contains("balance too low"));
    }

    #[test]
    fn txn_error_exposes_source() {
        use std::error::Error as _;
        let t = TxnError::Decaf(DecafError::UnknownRelation);
        assert!(t.source().is_some());
        assert!(TxnError::app("x").source().is_none());
    }
}
