//! Transactions: atomic multi-object updates (paper §2.4, §3.1).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use decaf_vt::{SiteId, VirtualTime};

use crate::collab::RelationInfo;
use crate::error::{DecafError, TxnError};
use crate::message::WireOp;
use crate::object::{Blueprint, ObjectKind, ObjectName, ObjectValue};
use crate::store::Store;
use crate::value::ScalarValue;

/// A user-defined transaction object.
///
/// "Application programmers may define transaction objects, with their
/// associated execute method, for actions that need to execute atomically
/// with respect to updates from other users. The execute method may contain
/// arbitrary code to read and write model objects" (§2.4).
///
/// The infrastructure may call [`execute`](Transaction::execute) **more
/// than once**: a transaction aborted by a concurrency-control conflict "is
/// automatically reexecuted at the originating site", so the body must be a
/// pure function of its inputs and the model-object state it reads.
/// Returning `Err` aborts *without* retry (the analogue of throwing an
/// exception), after which [`handle_abort`](Transaction::handle_abort) is
/// invoked.
///
/// # Example
///
/// The paper's `XferTrans` (Fig. 2), transferring between two balances:
///
/// ```
/// use decaf_core::{ObjectName, Transaction, TxnCtx, TxnError};
///
/// struct XferTrans {
///     from: ObjectName,
///     to: ObjectName,
///     amount: f64,
/// }
///
/// impl Transaction for XferTrans {
///     fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
///         let a = ctx.read_real(self.from)?;
///         if a - self.amount < 0.0 {
///             return Err(TxnError::app("can't transfer more than balance"));
///         }
///         let b = ctx.read_real(self.to)?;
///         ctx.write_real(self.from, a - self.amount)?;
///         ctx.write_real(self.to, b + self.amount)?;
///         Ok(())
///     }
///
///     fn handle_abort(&mut self, reason: &decaf_core::AbortReason) {
///         eprintln!("transfer aborted: {reason}");
///     }
/// }
/// ```
pub trait Transaction: Send + 'static {
    /// The transaction body: read and write model objects through `ctx`.
    ///
    /// # Errors
    ///
    /// Returning an error aborts the transaction without retry.
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError>;

    /// Called when the transaction is aborted *without retry* — an
    /// application abort, a retry-budget exhaustion, or an unrecoverable
    /// failure — "so that the user can be notified if desired" (§2.4).
    fn handle_abort(&mut self, reason: &AbortReason) {
        let _ = reason;
    }
}

/// Handle identifying a submitted transaction across its retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnHandle {
    /// Originating site.
    pub site: SiteId,
    /// Site-local transaction number (stable across retries; each retry
    /// gets a fresh *virtual time* but keeps this handle).
    pub id: u64,
}

impl fmt::Display for TxnHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.site.0, self.id)
    }
}

/// Final outcome of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxnOutcome {
    /// All guesses confirmed; effects are permanent everywhere.
    Committed,
    /// A guess was denied or the application aborted; effects were undone.
    Aborted,
}

impl fmt::Display for TxnOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TxnOutcome::Committed => "committed",
            TxnOutcome::Aborted => "aborted",
        })
    }
}

/// Why a transaction was aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AbortReason {
    /// An RL or NC guess was denied at a primary copy (retried
    /// automatically; surfaced only if the retry budget runs out).
    Conflict,
    /// A transaction whose uncommitted value this one read (RC guess)
    /// aborted, cascading into this one (retried automatically).
    DependencyAborted(VirtualTime),
    /// The application aborted (no retry).
    Application(TxnError),
    /// The primary site coordinating the transaction failed before commit
    /// (§3.4); retried after graph repair.
    PrimaryFailed(SiteId),
    /// The automatic-retry budget was exhausted.
    RetriesExhausted(u32),
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::Conflict => write!(f, "concurrency-control conflict"),
            AbortReason::DependencyAborted(vt) => {
                write!(f, "read value written by aborted transaction {vt}")
            }
            AbortReason::Application(e) => write!(f, "{e}"),
            AbortReason::PrimaryFailed(s) => write!(f, "primary site {s} failed"),
            AbortReason::RetriesExhausted(n) => write!(f, "gave up after {n} retries"),
        }
    }
}

/// What the transaction recorded about one object it read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ReadRec {
    /// `tR`: VT of the value read.
    pub t_r: VirtualTime,
    /// `tG`: VT of the replication graph observed.
    pub t_g: VirtualTime,
    /// RC guess: the uncommitted writer this read depends on, if any.
    pub rc: Option<VirtualTime>,
}

/// One write performed by the transaction (already applied locally).
#[derive(Debug, Clone)]
pub(crate) struct WriteRec {
    pub object: ObjectName,
    pub op: WireOp,
}

/// Everything a transaction's execution recorded, from which the engine
/// builds the propagation messages.
#[derive(Debug, Default)]
pub(crate) struct Recording {
    pub reads: BTreeMap<ObjectName, ReadRec>,
    pub writes: Vec<WriteRec>,
    /// Per written object: `(tR, tG)` — read time (or the txn's own VT for
    /// blind writes) and observed graph time.
    pub write_meta: BTreeMap<ObjectName, (VirtualTime, VirtualTime)>,
    /// Objects written (for rollback on abort).
    pub touched: BTreeSet<ObjectName>,
    /// Structural RC dependencies: transactions whose effects this one's
    /// operations reference by tag (e.g. a list remove depends on the
    /// uncommitted insert that created the removed entry, §3.2.1).
    pub extra_rc: BTreeSet<VirtualTime>,
}

impl Recording {
    /// RC guesses: all distinct uncommitted writer VTs this txn read, plus
    /// explicit structural dependencies.
    pub fn rc_dependencies(&self) -> BTreeSet<VirtualTime> {
        self.reads
            .values()
            .filter_map(|r| r.rc)
            .chain(self.extra_rc.iter().copied())
            .collect()
    }
}

/// The execution context handed to [`Transaction::execute`].
///
/// Every read is recorded (for RL/RC guesses) and every write is applied
/// optimistically to the local replica at the transaction's VT, then
/// propagated by the engine after the body returns.
#[derive(Debug)]
pub struct TxnCtx<'a> {
    pub(crate) vt: VirtualTime,
    pub(crate) store: &'a mut Store,
    pub(crate) rec: &'a mut Recording,
}

impl<'a> TxnCtx<'a> {
    /// The transaction's virtual time (exposed for diagnostics; application
    /// logic should not depend on it).
    pub fn vt(&self) -> VirtualTime {
        self.vt
    }

    fn record_read(&mut self, object: ObjectName) -> Result<(), TxnError> {
        if self.rec.write_meta.contains_key(&object) || self.rec.reads.contains_key(&object) {
            return Ok(()); // own write or already recorded
        }
        let entry = {
            let obj = self.store.get(object)?;
            let e = obj
                .values
                .current()
                .ok_or(DecafError::Uninitialized(object))?;
            (e.vt, e.committed)
        };
        let (_, t_g) = self.store.effective_graph(object)?;
        let rc = if entry.1 || entry.0 == self.vt {
            None
        } else {
            Some(entry.0)
        };
        self.rec.reads.insert(
            object,
            ReadRec {
                t_r: entry.0,
                t_g,
                rc,
            },
        );
        Ok(())
    }

    fn record_write(&mut self, object: ObjectName, op: WireOp) -> Result<(), TxnError> {
        if !self.rec.write_meta.contains_key(&object) {
            let t_r = match self.rec.reads.get(&object) {
                Some(r) => r.t_r,
                None => self.vt, // blind write: tR = tT (§3.1)
            };
            let (_, t_g) = self.store.effective_graph(object)?;
            self.rec.write_meta.insert(object, (t_r, t_g));
        }
        let changed = self
            .store
            .apply_wire_op(object, self.vt, &op)
            .map_err(|e| match e {
                crate::store::ApplyBlocked::Fatal(d) => TxnError::Decaf(d),
                crate::store::ApplyBlocked::MissingDependency(_) => {
                    TxnError::Decaf(DecafError::NoSuchObject(object))
                }
            })?;
        // Created children belong to this transaction: roll back and
        // commit together with the composite.
        self.rec.touched.extend(changed);
        self.rec.writes.push(WriteRec { object, op });
        Ok(())
    }

    // ---- scalars ---------------------------------------------------------

    /// Reads an integer model object.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or not an integer.
    pub fn read_int(&mut self, object: ObjectName) -> Result<i64, TxnError> {
        self.record_read(object)?;
        let (v, ..) = self.store.scalar_at(object, Some(self.vt))?;
        v.as_int().ok_or({
            TxnError::Decaf(DecafError::KindMismatch {
                object,
                expected: "int",
            })
        })
    }

    /// Reads a real model object.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or not a real.
    pub fn read_real(&mut self, object: ObjectName) -> Result<f64, TxnError> {
        self.record_read(object)?;
        let (v, ..) = self.store.scalar_at(object, Some(self.vt))?;
        v.as_real().ok_or({
            TxnError::Decaf(DecafError::KindMismatch {
                object,
                expected: "real",
            })
        })
    }

    /// Reads a string model object.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or not a string.
    pub fn read_str(&mut self, object: ObjectName) -> Result<String, TxnError> {
        self.record_read(object)?;
        let (v, ..) = self.store.scalar_at(object, Some(self.vt))?;
        match v {
            ScalarValue::Str(s) => Ok(s),
            _ => Err(TxnError::Decaf(DecafError::KindMismatch {
                object,
                expected: "string",
            })),
        }
    }

    /// Writes an integer model object.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or not an integer.
    pub fn write_int(&mut self, object: ObjectName, v: i64) -> Result<(), TxnError> {
        self.check_scalar_kind(object, ObjectKind::Int)?;
        self.record_write(object, WireOp::SetScalar(ScalarValue::Int(v)))
    }

    /// Writes a real model object.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or not a real.
    pub fn write_real(&mut self, object: ObjectName, v: f64) -> Result<(), TxnError> {
        self.check_scalar_kind(object, ObjectKind::Real)?;
        self.record_write(object, WireOp::SetScalar(ScalarValue::Real(v)))
    }

    /// Writes a string model object.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or not a string.
    pub fn write_str(&mut self, object: ObjectName, v: impl Into<String>) -> Result<(), TxnError> {
        self.check_scalar_kind(object, ObjectKind::Str)?;
        self.record_write(object, WireOp::SetScalar(ScalarValue::Str(v.into())))
    }

    fn check_scalar_kind(&self, object: ObjectName, kind: ObjectKind) -> Result<(), TxnError> {
        let obj = self.store.get(object)?;
        if obj.kind == kind {
            Ok(())
        } else {
            Err(TxnError::Decaf(DecafError::KindMismatch {
                object,
                expected: match kind {
                    ObjectKind::Int => "int",
                    ObjectKind::Real => "real",
                    _ => "string",
                },
            }))
        }
    }

    // ---- lists -----------------------------------------------------------

    /// The number of children in a list (a structural read).
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or not a list.
    pub fn list_len(&mut self, list: ObjectName) -> Result<usize, TxnError> {
        self.record_read(list)?;
        Ok(self.list_entries(list)?.len())
    }

    /// The child at `index`.
    ///
    /// This is *navigation*, not a semantic read: it records no read of the
    /// list, so a concurrent structural change to the list is "not a
    /// concurrency control conflict, because the two transactions
    /// read/update different objects" (§3.2.1). Use [`list_len`] when the
    /// transaction's logic depends on the structure.
    ///
    /// [`list_len`]: TxnCtx::list_len
    ///
    /// # Errors
    ///
    /// Fails if the object is not a list or the index is out of range.
    pub fn list_child(&mut self, list: ObjectName, index: usize) -> Result<ObjectName, TxnError> {
        let entries = self.list_entries(list)?;
        entries.get(index).map(|e| e.1).ok_or_else(|| {
            TxnError::Decaf(DecafError::NoSuchChild {
                object: list,
                detail: format!("index {index}"),
            })
        })
    }

    /// Inserts a new child built from `child` at `index` (clamped to the
    /// length). This is a *read-dependent* structural write: it records a
    /// read of the list, so a concurrent structural change forces a retry.
    ///
    /// Returns the new child's local name.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or not a list.
    pub fn list_insert(
        &mut self,
        list: ObjectName,
        index: usize,
        child: Blueprint,
    ) -> Result<ObjectName, TxnError> {
        self.record_read(list)?;
        self.record_write(list, WireOp::ListInsert { index, child })?;
        self.created_list_child(list)
    }

    /// Appends a new child — a *blind* structural write (no read recorded),
    /// so concurrent appends from different sites all commit, as in the
    /// paper's whiteboard workload (§5.1.2).
    ///
    /// Returns the new child's local name.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or not a list.
    pub fn list_push(
        &mut self,
        list: ObjectName,
        child: Blueprint,
    ) -> Result<ObjectName, TxnError> {
        self.record_write(
            list,
            WireOp::ListInsert {
                index: usize::MAX,
                child,
            },
        )?;
        self.created_list_child(list)
    }

    /// Removes the child at `index` (read-dependent).
    ///
    /// # Errors
    ///
    /// Fails if the object is not a list or the index is out of range.
    pub fn list_remove(&mut self, list: ObjectName, index: usize) -> Result<(), TxnError> {
        self.record_read(list)?;
        let entries = self.list_entries(list)?;
        let tag = entries.get(index).map(|e| e.0).ok_or_else(|| {
            TxnError::Decaf(DecafError::NoSuchChild {
                object: list,
                detail: format!("index {index}"),
            })
        })?;
        // The remove references the embedding at `tag`: if that structural
        // transaction is still uncommitted, this one must wait for it (and
        // abort with it) — a §3.2.1 path RC guess.
        let creator_committed = self
            .store
            .get(list)?
            .values
            .entry_at(tag)
            .map(|e| e.committed)
            .unwrap_or(true);
        if !creator_committed && tag != self.vt {
            self.rec.extra_rc.insert(tag);
        }
        self.record_write(list, WireOp::ListRemove { tag })
    }

    fn list_entries(&self, list: ObjectName) -> Result<Vec<(VirtualTime, ObjectName)>, TxnError> {
        let obj = self.store.get(list)?;
        let entry = obj
            .values
            .value_at(self.vt)
            .ok_or(DecafError::Uninitialized(list))?;
        match &entry.value {
            ObjectValue::List { entries, .. } => {
                Ok(entries.iter().map(|e| (e.tag, e.child)).collect())
            }
            _ => Err(TxnError::Decaf(DecafError::KindMismatch {
                object: list,
                expected: "list",
            })),
        }
    }

    fn created_list_child(&self, list: ObjectName) -> Result<ObjectName, TxnError> {
        let entries = self.list_entries(list)?;
        entries
            .iter()
            .rev()
            .find(|(tag, _)| *tag == self.vt)
            .map(|(_, c)| *c)
            .ok_or_else(|| {
                TxnError::Decaf(DecafError::NoSuchChild {
                    object: list,
                    detail: "freshly inserted child".into(),
                })
            })
    }

    // ---- tuples ----------------------------------------------------------

    /// Looks up a tuple child by key.
    ///
    /// Navigation only — records no read of the tuple (§3.2.1); use
    /// [`list_len`](TxnCtx::list_len)-style structural reads when the logic
    /// depends on the key set.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or not a tuple.
    pub fn tuple_get(
        &mut self,
        tuple: ObjectName,
        key: &str,
    ) -> Result<Option<ObjectName>, TxnError> {
        let obj = self.store.get(tuple)?;
        let entry = obj
            .values
            .value_at(self.vt)
            .ok_or(DecafError::Uninitialized(tuple))?;
        match &entry.value {
            ObjectValue::Tuple { entries, .. } => Ok(entries.get(key).copied()),
            _ => Err(TxnError::Decaf(DecafError::KindMismatch {
                object: tuple,
                expected: "tuple",
            })),
        }
    }

    /// Puts a child built from `child` under `key`, replacing any existing
    /// child. Returns the new child's local name.
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or not a tuple.
    pub fn tuple_put(
        &mut self,
        tuple: ObjectName,
        key: impl Into<String>,
        child: Blueprint,
    ) -> Result<ObjectName, TxnError> {
        let key = key.into();
        self.record_write(
            tuple,
            WireOp::TuplePut {
                key: key.clone(),
                child,
            },
        )?;
        let obj = self.store.get(tuple)?;
        let entry = obj
            .values
            .value_at(self.vt)
            .ok_or(DecafError::Uninitialized(tuple))?;
        match &entry.value {
            ObjectValue::Tuple { entries, .. } => entries.get(&key).copied().ok_or({
                TxnError::Decaf(DecafError::NoSuchChild {
                    object: tuple,
                    detail: key,
                })
            }),
            _ => unreachable!("record_write verified tuple kind"),
        }
    }

    /// Removes the child under `key` (read-dependent).
    ///
    /// # Errors
    ///
    /// Fails if the object is not a tuple or the key is absent.
    pub fn tuple_remove(&mut self, tuple: ObjectName, key: &str) -> Result<(), TxnError> {
        self.record_read(tuple)?;
        if self.tuple_get(tuple, key)?.is_none() {
            return Err(TxnError::Decaf(DecafError::NoSuchChild {
                object: tuple,
                detail: key.to_owned(),
            }));
        }
        self.record_write(
            tuple,
            WireOp::TupleRemove {
                key: key.to_owned(),
            },
        )
    }

    // ---- associations ----------------------------------------------------

    /// Reads an association object's raw state (internal: the collaboration
    /// machinery's read-modify-write path).
    pub(crate) fn read_assoc_state(
        &mut self,
        assoc: ObjectName,
    ) -> Result<crate::object::AssocState, TxnError> {
        self.record_read(assoc)?;
        let obj = self.store.get(assoc)?;
        let entry = obj
            .values
            .value_at(self.vt)
            .ok_or(DecafError::Uninitialized(assoc))?;
        match &entry.value {
            ObjectValue::Assoc(state) => Ok((**state).clone()),
            _ => Err(TxnError::Decaf(DecafError::KindMismatch {
                object: assoc,
                expected: "association",
            })),
        }
    }

    /// Writes an association object's raw state (internal).
    pub(crate) fn write_assoc_state(
        &mut self,
        assoc: ObjectName,
        state: crate::object::AssocState,
    ) -> Result<(), TxnError> {
        self.record_write(
            assoc,
            WireOp::SetAssoc(crate::message::AssocSnapshot(state)),
        )
    }

    /// Reads an association object's replica relationships (§2.6).
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or not an association.
    pub fn read_assoc(&mut self, assoc: ObjectName) -> Result<Vec<RelationInfo>, TxnError> {
        self.record_read(assoc)?;
        let obj = self.store.get(assoc)?;
        let entry = obj
            .values
            .value_at(self.vt)
            .ok_or(DecafError::Uninitialized(assoc))?;
        match &entry.value {
            ObjectValue::Assoc(state) => Ok(state
                .iter()
                .map(|(id, rel)| RelationInfo {
                    id: *id,
                    members: rel.members.iter().copied().collect(),
                    description: rel.description.clone(),
                })
                .collect()),
            _ => Err(TxnError::Decaf(DecafError::KindMismatch {
                object: assoc,
                expected: "association",
            })),
        }
    }
}
