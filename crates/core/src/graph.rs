//! Replication graphs and primary-copy selection.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use decaf_vt::SiteId;

use crate::collab::RelationId;
use crate::object::ObjectName;

/// A reference to one model object at one site: a node of a replication
/// graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeRef {
    /// Hosting site.
    pub site: SiteId,
    /// The object's name at that site.
    pub object: ObjectName,
}

impl NodeRef {
    /// Creates a node reference.
    pub fn new(site: SiteId, object: ObjectName) -> Self {
        NodeRef { site, object }
    }
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.site, self.object)
    }
}

/// The strategy mapping a replication graph to its primary copy.
///
/// "There is a function which maps replication graphs to a selected node in
/// that graph. The node is called the *primary copy* and the site of that
/// node is called the *primary site*" (§3). Crucially it is a *pure
/// function* — "there is no negotiation for primary copy... no phase during
/// which updates are not possible because a primary site is being chosen"
/// (§3.3). The selector is pluggable so the `a1_delegate` ablation can
/// control primary placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PrimarySelector {
    /// The node with the smallest `(site, object)` key (the default).
    #[default]
    MinNode,
    /// The node with the largest `(site, object)` key.
    MaxNode,
    /// A deterministic hash of the node set picks the node, spreading
    /// primaries across sites when many independent graphs exist.
    Rendezvous,
}

impl PrimarySelector {
    /// Applies the selection function to `graph`.
    ///
    /// Returns `None` only for an empty graph.
    pub fn primary(self, graph: &ReplicationGraph) -> Option<NodeRef> {
        match self {
            PrimarySelector::MinNode => graph.nodes.iter().next().copied(),
            PrimarySelector::MaxNode => graph.nodes.iter().next_back().copied(),
            PrimarySelector::Rendezvous => graph
                .nodes
                .iter()
                .max_by_key(|n| {
                    // FNV-1a over the node bytes; deterministic across runs.
                    let mut h: u64 = 0xcbf29ce484222325;
                    for b in [n.site.0 as u64, n.object.site.0 as u64, n.object.seq] {
                        h ^= b;
                        h = h.wrapping_mul(0x100000001b3);
                    }
                    (h, **n)
                })
                .copied(),
        }
    }
}

/// A replication graph: "a connected multigraph whose nodes are references
/// to model objects, and whose multi-edges are the replication relations
/// built by the users" (§3).
///
/// The graph of object *M* includes *M* and every object directly or
/// indirectly required to mirror it. Edges are labelled with the
/// [`RelationId`] of the replica relationship that created them, making the
/// graph a multigraph (two objects may be joined through several
/// relationships).
///
/// # Example
///
/// ```
/// use decaf_core::{NodeRef, ObjectName, PrimarySelector, RelationId, ReplicationGraph};
/// use decaf_vt::SiteId;
///
/// let a = NodeRef::new(SiteId(1), ObjectName::new(SiteId(1), 0));
/// let b = NodeRef::new(SiteId(2), ObjectName::new(SiteId(2), 0));
/// let g = ReplicationGraph::singleton(a).joined_with(&ReplicationGraph::singleton(b), a, b, RelationId(7));
/// assert_eq!(g.sites().collect::<Vec<_>>(), vec![SiteId(1), SiteId(2)]);
/// assert_eq!(PrimarySelector::MinNode.primary(&g), Some(a));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReplicationGraph {
    nodes: BTreeSet<NodeRef>,
    edges: BTreeSet<(NodeRef, NodeRef, RelationId)>,
}

impl ReplicationGraph {
    /// The graph of an unshared object: one node, no edges.
    pub fn singleton(node: NodeRef) -> Self {
        let mut nodes = BTreeSet::new();
        nodes.insert(node);
        ReplicationGraph {
            nodes,
            edges: BTreeSet::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes (only possible transiently, after
    /// every member left).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `node` participates in this graph.
    pub fn contains(&self, node: NodeRef) -> bool {
        self.nodes.contains(&node)
    }

    /// Iterates the nodes in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = &NodeRef> {
        self.nodes.iter()
    }

    /// Iterates the relation edges `(a, b, relation)` in ascending order,
    /// with `a < b` as maintained by [`joined_with`](Self::joined_with).
    ///
    /// Exposed so transports can serialize graphs without going through
    /// serde (the binary wire codec v2 walks nodes and edges directly).
    pub fn edges(&self) -> impl Iterator<Item = &(NodeRef, NodeRef, RelationId)> {
        self.edges.iter()
    }

    /// Rebuilds a graph from the parts produced by [`nodes`](Self::nodes)
    /// and [`edges`](Self::edges). Edge endpoints are normalized (`a < b`)
    /// and added to the node set, so any well-formed part list round-trips.
    pub fn from_parts(
        nodes: impl IntoIterator<Item = NodeRef>,
        edges: impl IntoIterator<Item = (NodeRef, NodeRef, RelationId)>,
    ) -> Self {
        let mut g = ReplicationGraph {
            nodes: nodes.into_iter().collect(),
            edges: BTreeSet::new(),
        };
        for (a, b, r) in edges {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            g.nodes.insert(lo);
            g.nodes.insert(hi);
            g.edges.insert((lo, hi, r));
        }
        g
    }

    /// Iterates the distinct sites hosting nodes, ascending.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        let mut last = None;
        self.nodes.iter().filter_map(move |n| {
            if last == Some(n.site) {
                None
            } else {
                last = Some(n.site);
                Some(n.site)
            }
        })
    }

    /// The node hosted at `site`, if any. (A site hosts at most one replica
    /// of a given logical object.)
    pub fn node_at(&self, site: SiteId) -> Option<NodeRef> {
        self.nodes.iter().find(|n| n.site == site).copied()
    }

    /// Merges `self` and `other` with a new replica-relation edge
    /// `a — b` labelled `relation`, producing the joined graph (§3.3: "B
    /// merges gA and gB").
    #[must_use]
    pub fn joined_with(
        &self,
        other: &ReplicationGraph,
        a: NodeRef,
        b: NodeRef,
        relation: RelationId,
    ) -> ReplicationGraph {
        let mut nodes = self.nodes.clone();
        nodes.extend(other.nodes.iter().copied());
        let mut edges = self.edges.clone();
        edges.extend(other.edges.iter().copied());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        edges.insert((lo, hi, relation));
        ReplicationGraph { nodes, edges }
    }

    /// Removes `node` and its incident edges, returning the graph that the
    /// *remaining* members share. If removal disconnects the graph, the
    /// component containing `keep_perspective` is returned (leave semantics:
    /// each component carries on independently).
    #[must_use]
    pub fn without_node(&self, node: NodeRef, keep_perspective: NodeRef) -> ReplicationGraph {
        let mut g = self.clone();
        g.nodes.remove(&node);
        g.edges.retain(|(a, b, _)| *a != node && *b != node);
        g.component_of(keep_perspective)
    }

    /// Removes every node hosted at `site` (fail-stop repair, §3.4),
    /// keeping the component of `keep_perspective`.
    #[must_use]
    pub fn without_site(&self, site: SiteId, keep_perspective: NodeRef) -> ReplicationGraph {
        let mut g = self.clone();
        g.nodes.retain(|n| n.site != site);
        g.edges.retain(|(a, b, _)| a.site != site && b.site != site);
        g.component_of(keep_perspective)
    }

    /// The connected component containing `node` (empty if absent).
    #[must_use]
    pub fn component_of(&self, node: NodeRef) -> ReplicationGraph {
        if !self.nodes.contains(&node) {
            return ReplicationGraph::default();
        }
        // Union-find-free BFS over the adjacency derived from edges;
        // isolated nodes are their own component.
        let mut adj: BTreeMap<NodeRef, Vec<NodeRef>> = BTreeMap::new();
        for (a, b, _) in &self.edges {
            adj.entry(*a).or_default().push(*b);
            adj.entry(*b).or_default().push(*a);
        }
        let mut seen = BTreeSet::new();
        let mut frontier = vec![node];
        while let Some(n) = frontier.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let Some(neigh) = adj.get(&n) {
                frontier.extend(neigh.iter().copied());
            }
        }
        let edges = self
            .edges
            .iter()
            .filter(|(a, b, _)| seen.contains(a) && seen.contains(b))
            .copied()
            .collect();
        ReplicationGraph { nodes: seen, edges }
    }

    /// Whether the graph is connected (a DECAF invariant for live graphs).
    pub fn is_connected(&self) -> bool {
        match self.nodes.iter().next() {
            None => true,
            Some(first) => self.component_of(*first).nodes.len() == self.nodes.len(),
        }
    }
}

impl fmt::Display for ReplicationGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(site: u32, seq: u64) -> NodeRef {
        NodeRef::new(SiteId(site), ObjectName::new(SiteId(site), seq))
    }

    fn three_chain() -> (ReplicationGraph, NodeRef, NodeRef, NodeRef) {
        let (a, b, c) = (node(1, 0), node(2, 0), node(3, 0));
        let g = ReplicationGraph::singleton(a)
            .joined_with(&ReplicationGraph::singleton(b), a, b, RelationId(1))
            .joined_with(&ReplicationGraph::singleton(c), b, c, RelationId(2));
        (g, a, b, c)
    }

    #[test]
    fn singleton_properties() {
        let g = ReplicationGraph::singleton(node(1, 5));
        assert_eq!(g.len(), 1);
        assert!(g.is_connected());
        assert_eq!(PrimarySelector::MinNode.primary(&g), Some(node(1, 5)));
    }

    #[test]
    fn join_merges_nodes_and_edges() {
        let (g, a, b, c) = three_chain();
        assert_eq!(g.len(), 3);
        assert!(g.contains(a) && g.contains(b) && g.contains(c));
        assert!(g.is_connected());
        assert_eq!(
            g.sites().collect::<Vec<_>>(),
            vec![SiteId(1), SiteId(2), SiteId(3)]
        );
    }

    #[test]
    fn primary_selectors_are_deterministic_functions() {
        let (g, a, _, c) = three_chain();
        assert_eq!(PrimarySelector::MinNode.primary(&g), Some(a));
        assert_eq!(PrimarySelector::MaxNode.primary(&g), Some(c));
        let r1 = PrimarySelector::Rendezvous.primary(&g);
        let r2 = PrimarySelector::Rendezvous.primary(&g.clone());
        assert_eq!(r1, r2, "pure function of the graph");
        assert!(g.contains(r1.unwrap()));
    }

    #[test]
    fn leave_removes_node_and_keeps_connected_component() {
        let (g, a, b, c) = three_chain();
        // b is the cut vertex: removing it separates {a} and {c}.
        let ga = g.without_node(b, a);
        assert_eq!(ga.nodes().copied().collect::<Vec<_>>(), vec![a]);
        let gc = g.without_node(b, c);
        assert_eq!(gc.nodes().copied().collect::<Vec<_>>(), vec![c]);
        // Removing a leaf keeps the rest together.
        let g2 = g.without_node(c, a);
        assert_eq!(g2.len(), 2);
        assert!(g2.is_connected());
    }

    #[test]
    fn without_site_strips_all_nodes_of_that_site() {
        let (g, a, _, c) = three_chain();
        let g2 = g.without_site(SiteId(2), a);
        assert!(!g2.nodes().any(|n| n.site == SiteId(2)));
        // a and c were only connected through site 2, so only a's component
        // survives from a's perspective.
        assert_eq!(g2.nodes().copied().collect::<Vec<_>>(), vec![a]);
        let _ = c;
    }

    #[test]
    fn multigraph_allows_parallel_edges() {
        let (a, b) = (node(1, 0), node(2, 0));
        let g = ReplicationGraph::singleton(a)
            .joined_with(&ReplicationGraph::singleton(b), a, b, RelationId(1))
            .joined_with(&ReplicationGraph::singleton(b), a, b, RelationId(2));
        // Removing nothing: both edges counted distinct; graph still 2 nodes.
        assert_eq!(g.len(), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn node_at_finds_site_replica() {
        let (g, a, ..) = three_chain();
        assert_eq!(g.node_at(SiteId(1)), Some(a));
        assert_eq!(g.node_at(SiteId(9)), None);
    }

    #[test]
    fn component_of_missing_node_is_empty() {
        let (g, ..) = three_chain();
        assert!(g.component_of(node(9, 9)).is_empty());
    }

    #[test]
    fn display_lists_nodes() {
        let g = ReplicationGraph::singleton(node(1, 2));
        assert_eq!(g.to_string(), "{S1:O1.2}");
    }
}
