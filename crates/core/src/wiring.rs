//! Test and example scaffolding: direct replica wiring and zero-latency
//! message pumping.
//!
//! Production collaborations are established dynamically through
//! invitations and [`Site::join`] (paper §2.6, §3.3). For unit tests,
//! examples, and benchmarks it is convenient to *pre-wire* replica
//! relationships — installing the same committed replication graph at every
//! participant, exactly the state a committed join would have produced —
//! and to pump messages between in-process sites without a transport.

use decaf_vt::VirtualTime;

use crate::collab::RelationId;
use crate::engine::Site;
use crate::graph::{NodeRef, ReplicationGraph};
use crate::object::ObjectName;

/// Installs a committed replica relationship between objects hosted by the
/// given sites (the post-state of a committed join, without the protocol).
///
/// All objects should have been created with the same initial value; the
/// relationship takes effect from `VirtualTime::ZERO`.
///
/// # Panics
///
/// Panics if fewer than two participants are given or an object is unknown
/// at its site.
pub fn wire_replicas(parts: &mut [(&mut Site, ObjectName)]) {
    assert!(parts.len() >= 2, "a replica relationship needs two members");
    let nodes: Vec<NodeRef> = parts
        .iter()
        .map(|(site, obj)| NodeRef::new(site.id(), *obj))
        .collect();
    let graph = replica_graph_over(&nodes);
    for (site, obj) in parts.iter_mut() {
        site.install_replica_graph(*obj, graph.clone());
    }
}

/// Builds the committed replication graph a chain of joins over `nodes`
/// would have produced — a pure function of the node list, so *separate
/// processes* can each construct an identical graph from a shared
/// configuration and install it locally (the `decaf-site` daemon does
/// exactly this with its peer table).
///
/// # Panics
///
/// Panics if `nodes` is empty.
pub fn replica_graph_over(nodes: &[NodeRef]) -> ReplicationGraph {
    assert!(!nodes.is_empty(), "a replication graph needs a node");
    let mut graph = ReplicationGraph::singleton(nodes[0]);
    for w in nodes.windows(2) {
        graph = graph.joined_with(
            &ReplicationGraph::singleton(w[1]),
            w[0],
            w[1],
            RelationId(0),
        );
    }
    graph
}

/// Convenience for the common two-party case.
///
/// # Panics
///
/// Panics if an object is unknown at its site.
pub fn wire_pair(a: &mut Site, obj_a: ObjectName, b: &mut Site, obj_b: ObjectName) {
    wire_replicas(&mut [(a, obj_a), (b, obj_b)]);
}

/// Delivers all queued messages between the given sites with zero latency
/// until the system quiesces. Returns the number of messages delivered.
///
/// Messages addressed to sites outside the slice are dropped (useful for
/// simulating a disconnected participant in tests).
pub fn run_to_quiescence(sites: &mut [&mut Site]) -> usize {
    let mut delivered = 0;
    loop {
        let mut envelopes = Vec::new();
        for site in sites.iter_mut() {
            envelopes.extend(site.drain_outbox());
        }
        if envelopes.is_empty() {
            return delivered;
        }
        for env in envelopes {
            if let Some(site) = sites.iter_mut().find(|s| s.id() == env.to) {
                site.handle_message(env);
                delivered += 1;
            }
        }
    }
}

impl Site {
    /// Installs `graph` as `obj`'s committed replication graph from
    /// `VirtualTime::ZERO` (wiring only — production code joins instead).
    ///
    /// # Panics
    ///
    /// Panics if `obj` does not exist at this site.
    pub fn install_replica_graph(&mut self, obj: ObjectName, graph: ReplicationGraph) {
        let o = self
            .store_mut()
            .get_mut(obj)
            .expect("install_replica_graph: unknown object");
        o.graphs = decaf_vt::History::new();
        o.graphs.insert_committed(VirtualTime::ZERO, graph);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decaf_vt::SiteId;

    #[test]
    fn wire_replicas_installs_identical_graphs() {
        let mut a = Site::new(SiteId(1));
        let mut b = Site::new(SiteId(2));
        let mut c = Site::new(SiteId(3));
        let (oa, ob, oc) = (a.create_int(0), b.create_int(0), c.create_int(0));
        wire_replicas(&mut [(&mut a, oa), (&mut b, ob), (&mut c, oc)]);
        let ga = a.replication_graph(oa).unwrap();
        let gb = b.replication_graph(ob).unwrap();
        assert_eq!(ga, gb);
        assert_eq!(ga.len(), 3);
        assert_eq!(a.primary_of(oa).unwrap(), b.primary_of(ob).unwrap());
        let _ = c;
    }

    #[test]
    fn run_to_quiescence_empty_is_zero() {
        let mut a = Site::new(SiteId(1));
        assert_eq!(run_to_quiescence(&mut [&mut a]), 0);
    }
}
