//! Scalar values held by scalar model objects.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The value of a scalar model object.
///
/// The paper's framework "currently supports scalar model objects of types
/// integer, real, and string" (§2.1); this enum carries any of the three.
///
/// `Eq`/`Hash` use the IEEE-754 bit pattern for reals, so histories and
/// message deduplication behave deterministically (`NaN == NaN` here,
/// deliberately).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ScalarValue {
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit IEEE-754 real.
    Real(f64),
    /// A UTF-8 string.
    Str(String),
}

impl ScalarValue {
    /// The integer value, if this is an [`ScalarValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ScalarValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The real value, if this is a [`ScalarValue::Real`].
    pub fn as_real(&self) -> Option<f64> {
        match self {
            ScalarValue::Real(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a [`ScalarValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ScalarValue::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Short name of the contained type, for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ScalarValue::Int(_) => "int",
            ScalarValue::Real(_) => "real",
            ScalarValue::Str(_) => "string",
        }
    }
}

impl PartialEq for ScalarValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ScalarValue::Int(a), ScalarValue::Int(b)) => a == b,
            (ScalarValue::Real(a), ScalarValue::Real(b)) => a.to_bits() == b.to_bits(),
            (ScalarValue::Str(a), ScalarValue::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for ScalarValue {}

impl std::hash::Hash for ScalarValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            ScalarValue::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            ScalarValue::Real(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            ScalarValue::Str(v) => {
                2u8.hash(state);
                v.hash(state);
            }
        }
    }
}

impl fmt::Display for ScalarValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarValue::Int(v) => write!(f, "{v}"),
            ScalarValue::Real(v) => write!(f, "{v}"),
            ScalarValue::Str(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<i64> for ScalarValue {
    fn from(v: i64) -> Self {
        ScalarValue::Int(v)
    }
}

impl From<f64> for ScalarValue {
    fn from(v: f64) -> Self {
        ScalarValue::Real(v)
    }
}

impl From<&str> for ScalarValue {
    fn from(v: &str) -> Self {
        ScalarValue::Str(v.to_owned())
    }
}

impl From<String> for ScalarValue {
    fn from(v: String) -> Self {
        ScalarValue::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(ScalarValue::Int(4).as_int(), Some(4));
        assert_eq!(ScalarValue::Int(4).as_real(), None);
        assert_eq!(ScalarValue::Real(2.5).as_real(), Some(2.5));
        assert_eq!(ScalarValue::from("hi").as_str(), Some("hi"));
    }

    #[test]
    fn real_equality_is_bitwise() {
        assert_eq!(ScalarValue::Real(f64::NAN), ScalarValue::Real(f64::NAN));
        assert_ne!(ScalarValue::Real(0.0), ScalarValue::Real(-0.0));
        assert_eq!(ScalarValue::Real(1.5), ScalarValue::Real(1.5));
    }

    #[test]
    fn cross_kind_values_differ() {
        assert_ne!(ScalarValue::Int(1), ScalarValue::Real(1.0));
        assert_ne!(ScalarValue::from("1"), ScalarValue::Int(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ScalarValue::Int(-3).to_string(), "-3");
        assert_eq!(ScalarValue::from("a b").to_string(), "\"a b\"");
    }

    #[test]
    fn from_impls() {
        assert_eq!(ScalarValue::from(7i64).kind_name(), "int");
        assert_eq!(ScalarValue::from(7.0f64).kind_name(), "real");
        assert_eq!(ScalarValue::from(String::from("x")).kind_name(), "string");
    }
}
