//! Dynamic collaboration establishment (paper §2.6, §3.3): replica
//! relationships, association objects, invitations, and the join protocol's
//! state machines.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use decaf_vt::{SiteId, VirtualTime};

use crate::graph::NodeRef;
use crate::object::ObjectName;

/// Identifier of a replica relationship.
///
/// "A replica relationship is a collection of model objects, usually
/// spanning multiple applications, which are required to mirror one
/// another's value. Replica relationships are symmetric and transitive"
/// (§2.2). The id labels the multigraph edges the relationship contributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelationId(pub u64);

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A published right to join a replica relationship.
///
/// "Application A must publicize the right to make replicas of its objects
/// by creating an external token, called an *invitation*, containing a
/// reference to Aassoc, somewhere where application B can access it (e.g.,
/// on a bulletin board)" (§2.6). The invitation is plain data — pass it
/// out-of-band (a test fixture, a file, a real bulletin board).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Invitation {
    /// The inviter's association object.
    pub assoc: NodeRef,
    /// The relationship being offered.
    pub relation: RelationId,
    /// A current member object of the relationship to contact (the paper's
    /// "reference to one of the objects in the replica relationship", §3.3).
    pub contact: NodeRef,
}

/// A read-only description of one replica relationship inside an
/// association object's value, as surfaced to transactions and views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationInfo {
    /// The relationship.
    pub id: RelationId,
    /// Member objects with their sites.
    pub members: Vec<NodeRef>,
    /// The application-supplied description.
    pub description: String,
}

// ---------------------------------------------------------------------------
// Engine-internal pending-operation state (§3.3 protocol)
// ---------------------------------------------------------------------------

/// Which phase a join initiated at this site is in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum JoinPhase {
    /// JoinRequest sent; awaiting JoinReply from the contact.
    AwaitingReply,
    /// Reply processed, merged graph applied and propagated; awaiting
    /// primary confirmations and RC commitments.
    AwaitingConfirms,
}

/// State of a join operation originated at this site (the paper's "A").
#[derive(Debug)]
pub(crate) struct JoinOp {
    /// The local object joining the relationship.
    pub local: ObjectName,
    /// The invitation being exercised.
    pub invitation: Invitation,
    pub phase: JoinPhase,
    /// `tG` of the local object's graph when the join started (the gA
    /// primary's RL guess interval).
    pub t_ga: VirtualTime,
    /// Outstanding primary confirmations (gA's primary, gB's primary, and
    /// the association's primary when it is remote). May go negative while
    /// the JoinReply is still in flight: primaries can confirm before the
    /// reply announces how many confirmations to expect.
    pub awaiting: i64,
    /// RC guesses: uncommitted transactions (e.g. the writer of gB's
    /// current value) that must commit first.
    pub rc_waits: BTreeSet<VirtualTime>,
    /// Every site that must receive the summary COMMIT/ABORT.
    pub affected: BTreeSet<SiteId>,
    /// Objects created locally by adopting the contact's value (committed
    /// and rolled back together with the join).
    pub adopted: Vec<ObjectName>,
    /// VT the adopted value was applied at (the contact's value VT).
    pub adopted_vt: VirtualTime,
    /// Denied by some primary (abort when bookkeeping drains).
    pub denied: bool,
    /// Remaining automatic retries.
    pub retries_left: u32,
}

/// State of a graph-only transaction (leave, failure repair via primary)
/// originated at this site.
#[derive(Debug)]
pub(crate) struct GraphTxn {
    /// Local object whose graph changes.
    pub local: ObjectName,
    pub awaiting: u32,
    pub affected: BTreeSet<SiteId>,
    pub denied: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_id_display() {
        assert_eq!(RelationId(4).to_string(), "R4");
    }

    #[test]
    fn invitation_is_plain_serializable_data() {
        let inv = Invitation {
            assoc: NodeRef::new(SiteId(1), ObjectName::new(SiteId(1), 0)),
            relation: RelationId(1),
            contact: NodeRef::new(SiteId(1), ObjectName::new(SiteId(1), 1)),
        };
        let json = serde_json::to_string(&inv).unwrap();
        let back: Invitation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, inv);
    }
}
