//! Persistence and recovery (paper §5.3: "We are also incorporating a
//! persistence store and recovery from a variety of failures into the
//! algorithms of DECAF").
//!
//! A [`Checkpoint`] captures a site's *durable* state — model objects with
//! their value and graph histories, reservations, decided-transaction
//! outcomes, and the Lamport clock — as plain serde-serializable data. The
//! format is caller's choice (JSON, bincode, …).
//!
//! Checkpoints are taken at quiescence: in-flight transactions hold boxed
//! application closures that cannot (and should not) be serialized; the
//! paper's failure model likewise has crashed clients "rejoin the
//! collaboration by going through a join protocol as new members" (§3.4),
//! so a recovering site either resumes from its checkpoint — if the
//! collaboration has not repaired it away — or restores its private state
//! and re-joins.

use serde::{Deserialize, Serialize};

use decaf_vt::{History, LamportClock, ReservationSet, SiteId, VirtualTime};

use crate::engine::{Site, SiteConfig};
use crate::graph::ReplicationGraph;
use crate::object::{ModelObject, ObjectKind, ObjectName, ObjectValue, PropagationMode};
use crate::txn::TxnOutcome;

/// Why a checkpoint could not be taken.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The site has in-flight work (pending transactions, joins, buffered
    /// stragglers, or unsent messages); drain it first.
    NotQuiescent,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::NotQuiescent => {
                write!(f, "site has in-flight work; checkpoint requires quiescence")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialized form of one model object.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectCheckpoint {
    /// The object's name.
    pub name: ObjectName,
    /// Its kind.
    pub kind: ObjectKind,
    pub(crate) values: History<ObjectValue>,
    pub(crate) graphs: History<ReplicationGraph>,
    pub(crate) value_reservations: ReservationSet,
    pub(crate) graph_reservations: ReservationSet,
    pub(crate) parent: Option<ObjectName>,
    pub(crate) propagation: PropagationMode,
    /// `(tag, child)` pairs of the embedding registry.
    pub(crate) embeddings: Vec<(VirtualTime, ObjectName)>,
}

/// A site's durable state, restorable with [`Site::restore`].
///
/// # Example
///
/// ```
/// use decaf_core::Site;
/// use decaf_vt::SiteId;
///
/// let mut site = Site::new(SiteId(1));
/// let obj = site.create_int(7);
/// let checkpoint = site.checkpoint().expect("quiescent");
/// let json = serde_json::to_string(&checkpoint).expect("serializable");
///
/// // ... crash, restart ...
/// let restored: decaf_core::Checkpoint = serde_json::from_str(&json).unwrap();
/// let site = Site::restore(restored);
/// assert_eq!(site.read_int_committed(obj), Some(7));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The checkpointed site.
    pub site: SiteId,
    pub(crate) clock: LamportClock,
    pub(crate) objects: Vec<ObjectCheckpoint>,
    pub(crate) next_seq: u64,
    /// Pairs rather than a map: JSON requires string map keys.
    pub(crate) decided: Vec<(VirtualTime, TxnOutcome)>,
    pub(crate) next_relation: u64,
}

impl Checkpoint {
    /// How many model objects the checkpoint contains.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }
}

impl Site {
    /// Captures the site's durable state.
    ///
    /// # Errors
    ///
    /// Fails with [`CheckpointError::NotQuiescent`] while transactions,
    /// joins, or protocol messages are in flight.
    pub fn checkpoint(&self) -> Result<Checkpoint, CheckpointError> {
        if !self.is_quiescent() {
            return Err(CheckpointError::NotQuiescent);
        }
        let objects = self
            .store_objects()
            .map(|o| ObjectCheckpoint {
                name: o.name,
                kind: o.kind,
                values: o.values.clone(),
                graphs: o.graphs.clone(),
                value_reservations: o.value_reservations.clone(),
                graph_reservations: o.graph_reservations.clone(),
                parent: o.parent,
                propagation: o.propagation,
                embeddings: o.embeddings.iter().map(|(k, v)| (*k, *v)).collect(),
            })
            .collect();
        Ok(Checkpoint {
            site: self.id(),
            clock: self.clock_snapshot(),
            objects,
            next_seq: self.store_next_seq(),
            decided: {
                let mut pairs: Vec<(VirtualTime, TxnOutcome)> = self
                    .decided_snapshot()
                    .iter()
                    .map(|(k, v)| (*k, *v))
                    .collect();
                pairs.sort_by_key(|(vt, _)| *vt);
                pairs
            },
            next_relation: self.next_relation_counter(),
        })
    }

    /// Reconstructs a site from a checkpoint (with the default
    /// [`SiteConfig`]); views and in-flight protocol state are not part of
    /// a checkpoint and start empty.
    pub fn restore(cp: Checkpoint) -> Site {
        Self::restore_with_config(cp, SiteConfig::default())
    }

    /// Reconstructs a site from a checkpoint with an explicit engine
    /// configuration.
    pub fn restore_with_config(cp: Checkpoint, config: SiteConfig) -> Site {
        let mut site = Site::with_config(cp.site, config);
        site.restore_clock(cp.clock);
        site.restore_decided(cp.decided.into_iter().collect());
        site.restore_relation_counter(cp.next_relation);
        site.restore_store(
            cp.next_seq,
            cp.objects.into_iter().map(|o| {
                let mut obj = ModelObject::new(o.name, o.kind);
                obj.values = o.values;
                obj.graphs = o.graphs;
                obj.value_reservations = o.value_reservations;
                obj.graph_reservations = o.graph_reservations;
                obj.parent = o.parent;
                obj.propagation = o.propagation;
                obj.embeddings = o.embeddings.into_iter().collect();
                obj
            }),
        );
        site
    }
}
