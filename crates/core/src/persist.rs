//! Persistence and recovery (paper §5.3: "We are also incorporating a
//! persistence store and recovery from a variety of failures into the
//! algorithms of DECAF").
//!
//! A [`Checkpoint`] captures a site's *durable* state — model objects with
//! their value and graph histories, reservations, decided-transaction
//! outcomes, and the Lamport clock — as plain serde-serializable data. The
//! format is caller's choice (JSON, bincode, …).
//!
//! Checkpoints are taken at quiescence: in-flight transactions hold boxed
//! application closures that cannot (and should not) be serialized; the
//! paper's failure model likewise has crashed clients "rejoin the
//! collaboration by going through a join protocol as new members" (§3.4),
//! so a recovering site either resumes from its checkpoint — if the
//! collaboration has not repaired it away — or restores its private state
//! and re-joins.
//!
//! On top of checkpoints sits the **write-ahead commit log**: an
//! append-only file of CRC-framed, length-prefixed records — one
//! [`CommitRecord`] per committed transaction, plus periodic inline
//! [`Checkpoint`] records. The reader ([`scan_wal`]) tolerates torn or
//! truncated tails by recovering the longest valid record prefix, and
//! [`Site::recover`] rebuilds a site from the newest checkpoint plus the
//! committed suffix, resuming the Lamport clock strictly ahead of anything
//! logged. See DESIGN.md §S20.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use decaf_vt::{History, LamportClock, ReservationSet, SiteId, VirtualTime};

use crate::engine::{Site, SiteConfig};
use crate::graph::ReplicationGraph;
use crate::message::WireOp;
use crate::object::{ModelObject, ObjectKind, ObjectName, ObjectValue, PropagationMode};
use crate::txn::TxnOutcome;

/// Why a checkpoint could not be taken.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The site has in-flight work (pending transactions, joins, buffered
    /// stragglers, or unsent messages); drain it first.
    NotQuiescent,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::NotQuiescent => {
                write!(f, "site has in-flight work; checkpoint requires quiescence")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialized form of one model object.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectCheckpoint {
    /// The object's name.
    pub name: ObjectName,
    /// Its kind.
    pub kind: ObjectKind,
    pub(crate) values: History<ObjectValue>,
    pub(crate) graphs: History<ReplicationGraph>,
    pub(crate) value_reservations: ReservationSet,
    pub(crate) graph_reservations: ReservationSet,
    pub(crate) parent: Option<ObjectName>,
    pub(crate) propagation: PropagationMode,
    /// `(tag, child)` pairs of the embedding registry.
    pub(crate) embeddings: Vec<(VirtualTime, ObjectName)>,
}

/// A site's durable state, restorable with [`Site::restore`].
///
/// # Example
///
/// ```
/// use decaf_core::Site;
/// use decaf_vt::SiteId;
///
/// let mut site = Site::new(SiteId(1));
/// let obj = site.create_int(7);
/// let checkpoint = site.checkpoint().expect("quiescent");
/// let json = serde_json::to_string(&checkpoint).expect("serializable");
///
/// // ... crash, restart ...
/// let restored: decaf_core::Checkpoint = serde_json::from_str(&json).unwrap();
/// let site = Site::restore(restored);
/// assert_eq!(site.read_int_committed(obj), Some(7));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The checkpointed site.
    pub site: SiteId,
    pub(crate) clock: LamportClock,
    pub(crate) objects: Vec<ObjectCheckpoint>,
    pub(crate) next_seq: u64,
    /// Pairs rather than a map: JSON requires string map keys.
    pub(crate) decided: Vec<(VirtualTime, TxnOutcome)>,
    pub(crate) next_relation: u64,
}

impl Checkpoint {
    /// How many model objects the checkpoint contains.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }
}

impl Site {
    /// Captures the site's durable state.
    ///
    /// # Errors
    ///
    /// Fails with [`CheckpointError::NotQuiescent`] while transactions,
    /// joins, or protocol messages are in flight.
    pub fn checkpoint(&self) -> Result<Checkpoint, CheckpointError> {
        if !self.is_quiescent() {
            return Err(CheckpointError::NotQuiescent);
        }
        let objects = self
            .store_objects()
            .map(|o| ObjectCheckpoint {
                name: o.name,
                kind: o.kind,
                values: o.values.clone(),
                graphs: o.graphs.clone(),
                value_reservations: o.value_reservations.clone(),
                graph_reservations: o.graph_reservations.clone(),
                parent: o.parent,
                propagation: o.propagation,
                embeddings: o.embeddings.iter().map(|(k, v)| (*k, *v)).collect(),
            })
            .collect();
        Ok(Checkpoint {
            site: self.id(),
            clock: self.clock_snapshot(),
            objects,
            next_seq: self.store_next_seq(),
            decided: {
                let mut pairs: Vec<(VirtualTime, TxnOutcome)> = self
                    .decided_snapshot()
                    .iter()
                    .map(|(k, v)| (*k, *v))
                    .collect();
                pairs.sort_by_key(|(vt, _)| *vt);
                pairs
            },
            next_relation: self.next_relation_counter(),
        })
    }

    /// Reconstructs a site from a checkpoint (with the default
    /// [`SiteConfig`]); views and in-flight protocol state are not part of
    /// a checkpoint and start empty.
    pub fn restore(cp: Checkpoint) -> Site {
        Self::restore_with_config(cp, SiteConfig::default())
    }

    /// Reconstructs a site from a checkpoint with an explicit engine
    /// configuration.
    pub fn restore_with_config(cp: Checkpoint, config: SiteConfig) -> Site {
        let mut site = Site::with_config(cp.site, config);
        site.restore_clock(cp.clock);
        site.restore_decided(cp.decided.into_iter().collect());
        site.restore_relation_counter(cp.next_relation);
        site.restore_store(
            cp.next_seq,
            cp.objects.into_iter().map(|o| {
                let mut obj = ModelObject::new(o.name, o.kind);
                obj.values = o.values;
                obj.graphs = o.graphs;
                obj.value_reservations = o.value_reservations;
                obj.graph_reservations = o.graph_reservations;
                obj.parent = o.parent;
                obj.propagation = o.propagation;
                obj.embeddings = o.embeddings.into_iter().collect();
                obj
            }),
        );
        site
    }

    /// Runs bounded local drain passes (buffered stragglers, parked
    /// snapshot evaluations, post-repair retries) and checkpoints as soon
    /// as the site is quiescent, so callers don't hand-roll the loop
    /// around [`Site::checkpoint`].
    ///
    /// # Quiescence contract
    ///
    /// A site is quiescent when it has no pending local transactions, no
    /// in-flight joins or graph transactions, no buffered straggler
    /// messages, and an empty outbox. Only the first three can ever be
    /// resolved *locally* (a straggler unblocks once its dependency has
    /// been applied; a parked snapshot re-evaluates after a rollback);
    /// pending transactions wait on peer verdicts and the outbox waits on
    /// the caller's transport, so this method cannot force quiescence on a
    /// site mid-collaboration — drive the network until message exchange
    /// settles, then call this. On failure, [`Site::debug_stuck`] lists
    /// what is still in flight.
    ///
    /// # Errors
    ///
    /// Fails with [`CheckpointError::NotQuiescent`] if the site still has
    /// in-flight work after `max_steps` passes.
    pub fn drain_and_checkpoint(&mut self, max_steps: u32) -> Result<Checkpoint, CheckpointError> {
        for _ in 0..max_steps.max(1) {
            if self.is_quiescent() {
                return self.checkpoint();
            }
            self.drain_pass();
        }
        if self.is_quiescent() {
            return self.checkpoint();
        }
        Err(CheckpointError::NotQuiescent)
    }
}

// ---------------------------------------------------------------------------
// Write-ahead commit log
// ---------------------------------------------------------------------------

/// Format-version byte stamped on every WAL frame. A complete, CRC-valid
/// frame with any *other* version byte makes the reader fail loudly
/// ([`WalError::UnsupportedVersion`]) instead of misdecoding — bump this
/// constant on any schema change to [`CommitRecord`] or [`Checkpoint`].
pub const WAL_FORMAT_VERSION: u8 = 1;

/// Frame kind byte for a [`CommitRecord`] payload.
const WAL_KIND_COMMIT: u8 = 1;
/// Frame kind byte for a [`Checkpoint`] payload.
const WAL_KIND_CHECKPOINT: u8 = 2;
/// Bytes in a frame header: version, kind, payload length, CRC-32.
const WAL_HEADER_LEN: usize = 10;

/// One committed transaction as recorded durably: its VT, the site that
/// originated it, and the post-state of every object it touched at the
/// logging site (serialized effects, not closures — replay is a wholesale
/// state write, not a re-execution).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommitRecord {
    /// The transaction's virtual time (its identity).
    pub vt: VirtualTime,
    /// The site that originated the transaction.
    pub origin: SiteId,
    /// `(object, read-time, post-state)` per touched local object.
    pub updates: Vec<(ObjectName, VirtualTime, WireOp)>,
}

/// A decoded WAL record: a committed transaction or an inline checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum WalRecord {
    /// One committed transaction.
    Commit(CommitRecord),
    /// A full durable-state checkpoint; replay restarts from the newest one.
    Checkpoint(Box<Checkpoint>),
}

/// Why a WAL could not be read or written.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A complete, CRC-valid frame carries an unknown format-version byte:
    /// the log was written by a different schema revision. Refusing loudly
    /// beats silently misdecoding it.
    UnsupportedVersion {
        /// The version byte found in the frame header.
        found: u8,
    },
    /// A complete, CRC-valid frame carries an unknown kind byte.
    UnknownKind {
        /// The kind byte found in the frame header.
        found: u8,
    },
    /// A CRC-valid payload failed to deserialize — a schema change without
    /// a version bump.
    SchemaMismatch {
        /// The frame's kind byte.
        kind: u8,
        /// The deserializer's complaint.
        detail: String,
    },
    /// Recovery needs at least one checkpoint record in the log (durable
    /// sites write a baseline checkpoint when first opening their log).
    NoCheckpoint,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::UnsupportedVersion { found } => write!(
                f,
                "wal frame has format version {found}, this build reads {WAL_FORMAT_VERSION}"
            ),
            WalError::UnknownKind { found } => write!(f, "wal frame has unknown kind {found}"),
            WalError::SchemaMismatch { kind, detail } => {
                write!(f, "wal frame (kind {kind}) failed to decode: {detail}")
            }
            WalError::NoCheckpoint => write!(f, "wal contains no checkpoint record"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// CRC-32 (IEEE, reflected) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    bytes.iter().fold(state, |crc, &b| {
        CRC32_TABLE[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8)
    })
}

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(!0, bytes)
}

/// Appends one framed record to `buf`:
/// `[version u8][kind u8][payload-len u32 LE][crc32 u32 LE][payload]`,
/// where the CRC covers the version, kind, and length bytes plus the
/// payload (everything except the CRC field itself).
pub fn append_frame(buf: &mut Vec<u8>, record: &WalRecord) {
    let (kind, payload) = match record {
        WalRecord::Commit(c) => (
            WAL_KIND_COMMIT,
            serde_json::to_vec(c).expect("commit record serializes"),
        ),
        WalRecord::Checkpoint(cp) => (
            WAL_KIND_CHECKPOINT,
            serde_json::to_vec(cp).expect("checkpoint serializes"),
        ),
    };
    let mut head = [0u8; 6];
    head[0] = WAL_FORMAT_VERSION;
    head[1] = kind;
    head[2..6].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = !crc32_update(crc32_update(!0, &head), &payload);
    buf.extend_from_slice(&head);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.extend_from_slice(&payload);
}

/// The result of scanning a WAL byte stream.
#[derive(Debug)]
pub struct WalScan {
    /// Every record in the longest valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of that prefix; anything past it is a torn tail.
    pub valid_len: usize,
}

impl WalScan {
    /// True if the scanned bytes ended in a torn/truncated frame.
    pub fn truncated_at(&self, total_len: usize) -> bool {
        self.valid_len < total_len
    }
}

/// Decodes the longest valid record prefix of `bytes`.
///
/// A tail that is incomplete (truncated header or payload) or fails its
/// CRC is treated as torn: scanning stops and `valid_len` marks the end of
/// the last intact record — truncating a valid log at *any* byte offset
/// recovers exactly the record prefix that fits, never panics, and never
/// decodes a partial record. A frame that is complete and CRC-valid but
/// carries an unknown version or kind byte, or a payload the current
/// schema cannot decode, is *not* torn — it is a schema mismatch, and the
/// scan fails loudly instead of guessing.
///
/// ```
/// use decaf_core::{append_frame, scan_wal, CommitRecord, WalRecord};
/// use decaf_vt::{SiteId, VirtualTime};
///
/// let rec = CommitRecord {
///     vt: VirtualTime::new(3, SiteId(1)),
///     origin: SiteId(1),
///     updates: vec![],
/// };
/// let mut log = Vec::new();
/// append_frame(&mut log, &WalRecord::Commit(rec));
/// let whole = log.len();
/// log.extend_from_slice(&log.clone()[..whole / 2]); // torn second record
///
/// let scan = scan_wal(&log).unwrap();
/// assert_eq!(scan.records.len(), 1);
/// assert_eq!(scan.valid_len, whole);
/// ```
pub fn scan_wal(bytes: &[u8]) -> Result<WalScan, WalError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= WAL_HEADER_LEN {
        let head = &bytes[pos..pos + WAL_HEADER_LEN];
        let len = u32::from_le_bytes(head[2..6].try_into().expect("4 bytes")) as usize;
        if bytes.len() - pos - WAL_HEADER_LEN < len {
            break; // torn payload
        }
        let payload = &bytes[pos + WAL_HEADER_LEN..pos + WAL_HEADER_LEN + len];
        let stored = u32::from_le_bytes(head[6..10].try_into().expect("4 bytes"));
        let computed = !crc32_update(crc32_update(!0, &head[..6]), payload);
        if stored != computed {
            break; // torn or corrupt tail
        }
        // From here on the frame is complete and integrity-checked, so any
        // decode trouble is a schema problem, not a torn tail.
        if head[0] != WAL_FORMAT_VERSION {
            return Err(WalError::UnsupportedVersion { found: head[0] });
        }
        let record = match head[1] {
            WAL_KIND_COMMIT => WalRecord::Commit(serde_json::from_slice(payload).map_err(|e| {
                WalError::SchemaMismatch {
                    kind: WAL_KIND_COMMIT,
                    detail: e.to_string(),
                }
            })?),
            WAL_KIND_CHECKPOINT => {
                WalRecord::Checkpoint(serde_json::from_slice(payload).map_err(|e| {
                    WalError::SchemaMismatch {
                        kind: WAL_KIND_CHECKPOINT,
                        detail: e.to_string(),
                    }
                })?)
            }
            other => return Err(WalError::UnknownKind { found: other }),
        };
        records.push(record);
        pos += WAL_HEADER_LEN + len;
    }
    Ok(WalScan {
        records,
        valid_len: pos,
    })
}

/// An append-only, fsync-on-commit WAL file (`wal.log` under a site's data
/// directory). Opening scans the existing contents, truncates any torn
/// tail, and positions appends at the end of the valid prefix.
#[derive(Debug)]
pub struct CommitLog {
    file: std::fs::File,
    path: PathBuf,
    len: u64,
}

impl CommitLog {
    /// File name of the log inside a data directory.
    pub const FILE_NAME: &'static str = "wal.log";

    /// Opens (creating as needed) the log under `data_dir` and scans it.
    pub fn open(data_dir: &Path) -> Result<(CommitLog, WalScan), WalError> {
        std::fs::create_dir_all(data_dir)?;
        let path = data_dir.join(Self::FILE_NAME);
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let scan = scan_wal(&bytes)?;
        if scan.valid_len < bytes.len() {
            file.set_len(scan.valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(scan.valid_len as u64))?;
        let len = scan.valid_len as u64;
        Ok((CommitLog { file, path, len }, scan))
    }

    fn append(&mut self, record: &WalRecord) -> Result<Duration, WalError> {
        let mut buf = Vec::new();
        append_frame(&mut buf, record);
        self.file.write_all(&buf)?;
        let start = Instant::now();
        self.file.sync_data()?;
        self.len += buf.len() as u64;
        Ok(start.elapsed())
    }

    /// Appends one committed transaction and fsyncs; returns the fsync
    /// latency (for the WAL latency histogram).
    pub fn append_commit(&mut self, rec: &CommitRecord) -> Result<Duration, WalError> {
        self.append(&WalRecord::Commit(rec.clone()))
    }

    /// Appends an inline checkpoint record and fsyncs.
    pub fn append_checkpoint(&mut self, cp: &Checkpoint) -> Result<Duration, WalError> {
        self.append(&WalRecord::Checkpoint(Box::new(cp.clone())))
    }

    /// Atomically rewrites the log as just `cp` (tmp file + rename),
    /// dropping the commit prefix the checkpoint already covers.
    pub fn compact(&mut self, cp: &Checkpoint) -> Result<(), WalError> {
        let tmp = self.path.with_extension("log.tmp");
        let mut buf = Vec::new();
        append_frame(&mut buf, &WalRecord::Checkpoint(Box::new(cp.clone())));
        let mut out = std::fs::File::create(&tmp)?;
        out.write_all(&buf)?;
        out.sync_all()?;
        std::fs::rename(&tmp, &self.path)?;
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.len = buf.len() as u64;
        Ok(())
    }

    /// Current byte length of the valid log.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The outcome of rebuilding a site from its WAL.
#[derive(Debug)]
pub struct Recovery {
    /// The recovered site (checkpoint restored, commit suffix replayed,
    /// clock strictly ahead of everything logged).
    pub site: Site,
    /// How many commit records were replayed past the checkpoint.
    pub replayed: usize,
    /// The highest committed VT known after recovery — the frontier a
    /// rejoining site announces to its peers for catch-up.
    pub frontier: Option<VirtualTime>,
}

impl Site {
    /// Rebuilds a site from scanned WAL records: restore the newest
    /// [`Checkpoint`], replay every [`CommitRecord`] after it.
    ///
    /// # Errors
    ///
    /// Fails with [`WalError::NoCheckpoint`] if the log holds no
    /// checkpoint record (durable sites write a baseline checkpoint when
    /// first opening their log, so this indicates a foreign or empty log).
    pub fn recover_from_records(
        records: Vec<WalRecord>,
        config: SiteConfig,
    ) -> Result<Recovery, WalError> {
        let mut checkpoint: Option<Box<Checkpoint>> = None;
        let mut suffix: Vec<CommitRecord> = Vec::new();
        for record in records {
            match record {
                WalRecord::Checkpoint(cp) => {
                    checkpoint = Some(cp);
                    suffix.clear();
                }
                WalRecord::Commit(c) => suffix.push(c),
            }
        }
        let checkpoint = checkpoint.ok_or(WalError::NoCheckpoint)?;
        let mut site = Site::restore_with_config(*checkpoint, config);
        let replayed = suffix.len();
        for rec in &suffix {
            site.replay_commit(rec);
        }
        site.bump_clock_past_recovery();
        let frontier = site.committed_frontier();
        Ok(Recovery {
            site,
            replayed,
            frontier,
        })
    }

    /// Full restart path for a durable site: open the WAL under
    /// `data_dir`, truncate any torn tail, restore the newest checkpoint,
    /// and replay the committed suffix. Returns the recovery outcome plus
    /// the open log, ready for further appends.
    pub fn recover(data_dir: &Path, config: SiteConfig) -> Result<(Recovery, CommitLog), WalError> {
        let (log, scan) = CommitLog::open(data_dir)?;
        let recovery = Site::recover_from_records(scan.records, config)?;
        Ok((recovery, log))
    }
}
