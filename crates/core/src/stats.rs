//! Per-site statistics, matching the metrics the paper's benchmarks report
//! (§5.1.2, §5.2.2), plus transport-level counters for substrates that
//! carry the protocol over a real network.

use std::fmt;

/// Counters accumulated by one [`Site`](crate::Site).
///
/// The three "deviations from the ideal notification sequence" that an
/// optimistic view may experience (§5.1.2) are counted explicitly:
///
/// * [`lost_updates`](SiteStats::lost_updates) — an update message arrived
///   with a VT earlier than a previously processed update, so it yields no
///   notification;
/// * [`update_inconsistencies`](SiteStats::update_inconsistencies) — an
///   update was shown to a view but the writing transaction later rolled
///   back;
/// * [`read_inconsistencies`](SiteStats::read_inconsistencies) — a view
///   observing several objects was notified, and a straggling update to
///   another attached object then arrived with an earlier VT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SiteStats {
    /// Transactions submitted at this site (first executions, not retries).
    pub txns_started: u64,
    /// Transactions committed (originated here).
    pub txns_committed: u64,
    /// Conflict aborts of locally originated transactions (each normally
    /// followed by an automatic retry).
    pub txns_aborted_conflict: u64,
    /// Application aborts (no retry).
    pub txns_aborted_user: u64,
    /// Automatic re-executions performed.
    pub retries: u64,
    /// Update notifications delivered to optimistic views.
    pub opt_notifications: u64,
    /// Commit notifications delivered to optimistic views.
    pub opt_commits: u64,
    /// Update notifications delivered to pessimistic views.
    pub pess_notifications: u64,
    /// Lost updates (optimistic views), per §5.1.2 definition.
    pub lost_updates: u64,
    /// Updates shown optimistically whose transaction later aborted.
    pub update_inconsistencies: u64,
    /// Straggler-after-notification events on optimistic views.
    pub read_inconsistencies: u64,
    /// Protocol messages sent by this site.
    pub msgs_sent: u64,
    /// Protocol messages received by this site.
    pub msgs_received: u64,
    /// History entries discarded by garbage collection.
    pub gc_discarded: u64,
    /// Snapshot re-runs caused by denied or invalidated guesses.
    pub snapshot_reruns: u64,
    /// Trace events lost by the engine's trace sink (ring overflow or
    /// sink contention); 0 when tracing is disabled.
    pub trace_events_dropped: u64,
}

impl SiteStats {
    /// Rollback (conflict-abort) rate over started transactions, the
    /// paper's §5.2.2 rollback metric.
    pub fn rollback_rate(&self) -> f64 {
        if self.txns_started == 0 {
            0.0
        } else {
            self.txns_aborted_conflict as f64 / self.txns_started as f64
        }
    }

    /// Lost-update rate over optimistic deliveries plus losses (§5.2.2).
    pub fn lost_update_rate(&self) -> f64 {
        let denom = self.opt_notifications + self.lost_updates;
        if denom == 0 {
            0.0
        } else {
            self.lost_updates as f64 / denom as f64
        }
    }

    /// Folds `other`'s counters into `self`, for aggregating the stats of
    /// several sites (or several runs) into one fleet-wide total — the
    /// aggregation `decaf-trace-summarize` performs across trace files.
    pub fn merge(&mut self, other: &SiteStats) {
        self.txns_started += other.txns_started;
        self.txns_committed += other.txns_committed;
        self.txns_aborted_conflict += other.txns_aborted_conflict;
        self.txns_aborted_user += other.txns_aborted_user;
        self.retries += other.retries;
        self.opt_notifications += other.opt_notifications;
        self.opt_commits += other.opt_commits;
        self.pess_notifications += other.pess_notifications;
        self.lost_updates += other.lost_updates;
        self.update_inconsistencies += other.update_inconsistencies;
        self.read_inconsistencies += other.read_inconsistencies;
        self.msgs_sent += other.msgs_sent;
        self.msgs_received += other.msgs_received;
        self.gc_discarded += other.gc_discarded;
        self.snapshot_reruns += other.snapshot_reruns;
        self.trace_events_dropped += other.trace_events_dropped;
    }
}

impl fmt::Display for SiteStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "txns {}/{} committed ({} conflict aborts, {} retries); \
             opt notif {} (+{} commits, {} lost, {} upd-inc, {} read-inc); \
             pess notif {}; msgs {}/{}; trace dropped {}",
            self.txns_committed,
            self.txns_started,
            self.txns_aborted_conflict,
            self.retries,
            self.opt_notifications,
            self.opt_commits,
            self.lost_updates,
            self.update_inconsistencies,
            self.read_inconsistencies,
            self.pess_notifications,
            self.msgs_sent,
            self.msgs_received,
            self.trace_events_dropped,
        )
    }
}

/// Counters accumulated by one network transport endpoint.
///
/// The engine itself is sans-I/O, so byte- and frame-level accounting lives
/// with whichever substrate carries the [`Envelope`](crate::Envelope)s. The
/// TCP mesh in `decaf-net` fills in every field; in-process transports
/// (simulator, threaded) have no frames and leave the byte counters at
/// zero. Snapshots are taken with `TcpMesh::stats()` and friends; this type
/// is the plain-old-data exchange format, mirroring how [`SiteStats`]
/// reports engine-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct TransportStats {
    /// Payload + header bytes received.
    pub bytes_in: u64,
    /// Payload + header bytes sent.
    pub bytes_out: u64,
    /// Well-formed frames received (all kinds, including heartbeats).
    pub frames_in: u64,
    /// Frames sent (all kinds, including heartbeats).
    pub frames_out: u64,
    /// Malformed frames rejected (bad magic/version/length/CRC or an
    /// undecodable payload).
    pub frames_rejected: u64,
    /// Successful reconnections to a peer after a broken link.
    pub reconnects: u64,
    /// Heartbeat (keepalive) frames sent.
    pub heartbeats_sent: u64,
    /// Heartbeat-silence expiries observed (a peer went quiet longer than
    /// the configured timeout).
    pub heartbeat_misses: u64,
    /// Peers declared fail-stopped (each produces one `SiteFailed`
    /// notification toward the engine, §3.4).
    pub peers_failed: u64,
    /// Outbound messages dropped because a peer's bounded queue was full
    /// or the peer was already declared failed.
    pub sends_dropped: u64,
    /// Trace events lost by the transport's trace sink (ring overflow or
    /// sink contention); 0 when tracing is disabled.
    pub trace_events_dropped: u64,
    /// High-water mark of any per-peer outbound queue depth observed.
    pub queue_depth_hwm: u64,
    /// Envelopes that rode along in a multi-envelope Batch frame instead of
    /// getting a frame (and header, and write) of their own: for a batch of
    /// `n` envelopes this counts `n - 1`.
    pub frames_coalesced: u64,
    /// Frame-header bytes saved by coalescing (each coalesced envelope
    /// avoids one fixed-size frame header).
    pub bytes_saved: u64,
    /// Frames sent with the compact binary codec v2 (single-envelope or
    /// batch) rather than v1 serde-JSON.
    pub codec_v2_frames: u64,
}

impl TransportStats {
    /// Folds `other`'s counters into `self`, for aggregating endpoints
    /// across sites. Counters add; the queue-depth high-water mark takes
    /// the max (it is a level, not a flow).
    pub fn merge(&mut self, other: &TransportStats) {
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.frames_rejected += other.frames_rejected;
        self.reconnects += other.reconnects;
        self.heartbeats_sent += other.heartbeats_sent;
        self.heartbeat_misses += other.heartbeat_misses;
        self.peers_failed += other.peers_failed;
        self.sends_dropped += other.sends_dropped;
        self.trace_events_dropped += other.trace_events_dropped;
        self.queue_depth_hwm = self.queue_depth_hwm.max(other.queue_depth_hwm);
        self.frames_coalesced += other.frames_coalesced;
        self.bytes_saved += other.bytes_saved;
        self.codec_v2_frames += other.codec_v2_frames;
    }
}

impl fmt::Display for TransportStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frames {}/{} in/out ({} rejected); bytes {}/{}; \
             {} reconnects; hb {} sent, {} missed; {} peers failed; \
             {} sends dropped; qdepth hwm {}; trace dropped {}; \
             {} coalesced ({} bytes saved); {} v2 frames",
            self.frames_in,
            self.frames_out,
            self.frames_rejected,
            self.bytes_in,
            self.bytes_out,
            self.reconnects,
            self.heartbeats_sent,
            self.heartbeat_misses,
            self.peers_failed,
            self.sends_dropped,
            self.queue_depth_hwm,
            self.trace_events_dropped,
            self.frames_coalesced,
            self.bytes_saved,
            self.codec_v2_frames,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_stats_display_is_nonempty() {
        let t = TransportStats {
            frames_in: 3,
            reconnects: 1,
            ..Default::default()
        };
        let s = t.to_string();
        assert!(s.contains("3/0"));
        assert!(s.contains("1 reconnects"));
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let s = SiteStats::default();
        assert_eq!(s.rollback_rate(), 0.0);
        assert_eq!(s.lost_update_rate(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = SiteStats {
            txns_started: 10,
            txns_aborted_conflict: 2,
            opt_notifications: 8,
            lost_updates: 2,
            ..Default::default()
        };
        assert!((s.rollback_rate() - 0.2).abs() < 1e-12);
        assert!((s.lost_update_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!SiteStats::default().to_string().is_empty());
    }

    #[test]
    fn display_reports_trace_and_queue_counters() {
        let t = TransportStats {
            trace_events_dropped: 7,
            queue_depth_hwm: 12,
            ..Default::default()
        };
        let s = t.to_string();
        assert!(s.contains("(0 rejected)"), "{s}");
        assert!(s.contains("qdepth hwm 12"), "{s}");
        assert!(s.contains("trace dropped 7"), "{s}");
        let e = SiteStats {
            trace_events_dropped: 3,
            ..Default::default()
        };
        assert!(e.to_string().contains("trace dropped 3"));
    }

    #[test]
    fn site_stats_merge_adds_counters() {
        let a = SiteStats {
            txns_started: 4,
            txns_committed: 3,
            msgs_sent: 10,
            trace_events_dropped: 1,
            ..Default::default()
        };
        let b = SiteStats {
            txns_started: 6,
            txns_committed: 5,
            msgs_received: 2,
            ..Default::default()
        };
        let mut sum = a;
        sum.merge(&b);
        assert_eq!(sum.txns_started, 10);
        assert_eq!(sum.txns_committed, 8);
        assert_eq!(sum.msgs_sent, 10);
        assert_eq!(sum.msgs_received, 2);
        assert_eq!(sum.trace_events_dropped, 1);
    }

    #[test]
    fn transport_stats_merge_adds_counters_and_maxes_hwm() {
        let a = TransportStats {
            frames_in: 5,
            queue_depth_hwm: 3,
            frames_coalesced: 4,
            bytes_saved: 56,
            ..Default::default()
        };
        let b = TransportStats {
            frames_in: 7,
            queue_depth_hwm: 9,
            trace_events_dropped: 2,
            frames_coalesced: 6,
            bytes_saved: 84,
            codec_v2_frames: 11,
            ..Default::default()
        };
        let mut sum = a;
        sum.merge(&b);
        assert_eq!(sum.frames_in, 12);
        assert_eq!(sum.queue_depth_hwm, 9);
        assert_eq!(sum.trace_events_dropped, 2);
        assert_eq!(sum.frames_coalesced, 10);
        assert_eq!(sum.bytes_saved, 140);
        assert_eq!(sum.codec_v2_frames, 11);
    }

    #[test]
    fn transport_stats_display_reports_batching_counters() {
        let t = TransportStats {
            frames_coalesced: 9,
            bytes_saved: 126,
            codec_v2_frames: 5,
            ..Default::default()
        };
        let s = t.to_string();
        assert!(s.contains("9 coalesced (126 bytes saved)"), "{s}");
        assert!(s.contains("5 v2 frames"), "{s}");
    }
}
