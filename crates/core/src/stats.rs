//! Per-site statistics, matching the metrics the paper's benchmarks report
//! (§5.1.2, §5.2.2).

use std::fmt;

/// Counters accumulated by one [`Site`](crate::Site).
///
/// The three "deviations from the ideal notification sequence" that an
/// optimistic view may experience (§5.1.2) are counted explicitly:
///
/// * [`lost_updates`](SiteStats::lost_updates) — an update message arrived
///   with a VT earlier than a previously processed update, so it yields no
///   notification;
/// * [`update_inconsistencies`](SiteStats::update_inconsistencies) — an
///   update was shown to a view but the writing transaction later rolled
///   back;
/// * [`read_inconsistencies`](SiteStats::read_inconsistencies) — a view
///   observing several objects was notified, and a straggling update to
///   another attached object then arrived with an earlier VT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SiteStats {
    /// Transactions submitted at this site (first executions, not retries).
    pub txns_started: u64,
    /// Transactions committed (originated here).
    pub txns_committed: u64,
    /// Conflict aborts of locally originated transactions (each normally
    /// followed by an automatic retry).
    pub txns_aborted_conflict: u64,
    /// Application aborts (no retry).
    pub txns_aborted_user: u64,
    /// Automatic re-executions performed.
    pub retries: u64,
    /// Update notifications delivered to optimistic views.
    pub opt_notifications: u64,
    /// Commit notifications delivered to optimistic views.
    pub opt_commits: u64,
    /// Update notifications delivered to pessimistic views.
    pub pess_notifications: u64,
    /// Lost updates (optimistic views), per §5.1.2 definition.
    pub lost_updates: u64,
    /// Updates shown optimistically whose transaction later aborted.
    pub update_inconsistencies: u64,
    /// Straggler-after-notification events on optimistic views.
    pub read_inconsistencies: u64,
    /// Protocol messages sent by this site.
    pub msgs_sent: u64,
    /// Protocol messages received by this site.
    pub msgs_received: u64,
    /// History entries discarded by garbage collection.
    pub gc_discarded: u64,
    /// Snapshot re-runs caused by denied or invalidated guesses.
    pub snapshot_reruns: u64,
}

impl SiteStats {
    /// Rollback (conflict-abort) rate over started transactions, the
    /// paper's §5.2.2 rollback metric.
    pub fn rollback_rate(&self) -> f64 {
        if self.txns_started == 0 {
            0.0
        } else {
            self.txns_aborted_conflict as f64 / self.txns_started as f64
        }
    }

    /// Lost-update rate over optimistic deliveries plus losses (§5.2.2).
    pub fn lost_update_rate(&self) -> f64 {
        let denom = self.opt_notifications + self.lost_updates;
        if denom == 0 {
            0.0
        } else {
            self.lost_updates as f64 / denom as f64
        }
    }
}

impl fmt::Display for SiteStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "txns {}/{} committed ({} conflict aborts, {} retries); \
             opt notif {} (+{} commits, {} lost, {} upd-inc, {} read-inc); \
             pess notif {}; msgs {}/{}",
            self.txns_committed,
            self.txns_started,
            self.txns_aborted_conflict,
            self.retries,
            self.opt_notifications,
            self.opt_commits,
            self.lost_updates,
            self.update_inconsistencies,
            self.read_inconsistencies,
            self.pess_notifications,
            self.msgs_sent,
            self.msgs_received,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = SiteStats::default();
        assert_eq!(s.rollback_rate(), 0.0);
        assert_eq!(s.lost_update_rate(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = SiteStats {
            txns_started: 10,
            txns_aborted_conflict: 2,
            opt_notifications: 8,
            lost_updates: 2,
            ..Default::default()
        };
        assert!((s.rollback_rate() - 0.2).abs() < 1e-12);
        assert!((s.lost_update_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!SiteStats::default().to_string().is_empty());
    }
}
