//! Garbage-collection safety and liveness: the RL/NC evidence horizon
//! against racing stale writes, and heartbeat-driven horizon progress
//! under one-directional traffic.

use decaf_core::{
    wiring, Envelope, Message, ObjectName, Site, Transaction, TxnCtx, TxnError, TxnOutcome,
};
use decaf_vt::SiteId;

struct Incr(ObjectName);
impl Transaction for Incr {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + 1)
    }
}

struct SetInt(ObjectName, i64);
impl Transaction for SetInt {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.write_int(self.0, self.1)
    }
}

/// Deterministic replay of the race that once lost committed increments on
/// the threaded transport: the primary commits and garbage-collects its own
/// increment, then a stale read-modify-write arrives. The peer-horizon GC
/// bound must have kept the evidence, so the stale write is denied and
/// retried — not silently merged.
#[test]
fn stale_write_after_commit_and_gc_is_denied() {
    let mut a = Site::new(SiteId(1)); // primary (MinNode)
    let mut b = Site::new(SiteId(2));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    wiring::wire_pair(&mut a, oa, &mut b, ob);

    // b increments based on the initial value; hold its messages in
    // flight.
    b.execute(Box::new(Incr(ob)));
    let in_flight: Vec<Envelope> = b.drain_outbox();

    // Meanwhile the primary itself increments and commits immediately —
    // and runs GC.
    a.execute(Box::new(Incr(oa)));
    let a_out = a.drain_outbox(); // write+commit to b, delivered later
    assert_eq!(a.read_int_committed(oa), Some(1));

    // The stale write now reaches the primary. It read value@ZERO, so its
    // RL interval contains a's committed increment: must be denied.
    for e in in_flight {
        if e.to == SiteId(1) {
            a.handle_message(e);
        }
    }
    let replies = a.drain_outbox();
    assert!(
        replies
            .iter()
            .any(|e| matches!(e.msg, Message::Abort { .. } | Message::Deny { .. })),
        "stale write must be denied, got {:?}",
        replies.iter().map(|e| e.msg.tag()).collect::<Vec<_>>()
    );
    // Let everything settle: b learns of a's increment, retries, and both
    // increments land.
    for e in a_out.into_iter().chain(replies) {
        match e.to {
            SiteId(1) => a.handle_message(e),
            SiteId(2) => b.handle_message(e),
            _ => unreachable!(),
        }
    }
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(a.read_int_committed(oa), Some(2), "no increment lost");
    assert_eq!(b.read_int_committed(ob), Some(2));
}

/// One-directional traffic: a silent replica's heartbeats keep the
/// sender's GC horizon moving, so histories stay bounded.
#[test]
fn heartbeats_unblock_gc_under_one_directional_traffic() {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    wiring::wire_pair(&mut a, oa, &mut b, ob);

    // Only a ever initiates; b is a pure consumer.
    for i in 0..60 {
        a.execute(Box::new(SetInt(oa, i)));
        wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    }
    assert!(
        a.history_len(oa) <= 12,
        "heartbeats must keep the writer's GC horizon advancing: {}",
        a.history_len(oa)
    );
    assert!(b.history_len(ob) <= 12);
    assert_eq!(b.read_int_committed(ob), Some(59));
}

/// Reservations released by an aborted transaction stop constraining
/// others.
#[test]
fn aborted_transactions_release_their_reservations() {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    wiring::wire_pair(&mut a, oa, &mut b, ob);

    // A user-aborting transaction at the primary leaves no residue at all.
    struct ReadThenFail(ObjectName);
    impl Transaction for ReadThenFail {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            let _ = ctx.read_int(self.0)?;
            Err(TxnError::app("never mind"))
        }
    }
    let h = a.execute(Box::new(ReadThenFail(oa)));
    assert_eq!(a.txn_outcome(h), Some(TxnOutcome::Aborted));

    // Subsequent work proceeds normally from both sides.
    a.execute(Box::new(Incr(oa)));
    b.execute(Box::new(Incr(ob)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(a.read_int_committed(oa), Some(2));
    assert_eq!(b.read_int_committed(ob), Some(2));
}

/// The decided-outcome table stays bounded over a long run (record
/// pruning below the peer horizon).
#[test]
fn long_run_stays_memory_bounded() {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    wiring::wire_pair(&mut a, oa, &mut b, ob);
    for i in 0..500 {
        let (site, obj) = if i % 2 == 0 {
            (&mut a, oa)
        } else {
            (&mut b, ob)
        };
        site.execute(Box::new(Incr(obj)));
        wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    }
    assert_eq!(a.read_int_committed(oa), Some(500));
    assert!(a.history_len(oa) <= 12, "history: {}", a.history_len(oa));
    assert!(
        a.reservation_count(oa) <= 64,
        "reservations: {}",
        a.reservation_count(oa)
    );
}
