//! Client-failure handling tests (paper §3.4): originator failure with
//! in-doubt resolution, primary failure with consensus graph repair, and
//! post-repair retry.

use decaf_core::{wiring, Envelope, ObjectName, Site, Transaction, TxnCtx, TxnError};
use decaf_vt::SiteId;

struct SetInt(ObjectName, i64);
impl Transaction for SetInt {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.write_int(self.0, self.1)
    }
}

struct Incr(ObjectName);
impl Transaction for Incr {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + 1)
    }
}

/// Three wired sites.
fn trio() -> (Site, Site, Site, ObjectName, ObjectName, ObjectName) {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let mut c = Site::new(SiteId(3));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    let oc = c.create_int(0);
    wiring::wire_replicas(&mut [(&mut a, oa), (&mut b, ob), (&mut c, oc)]);
    (a, b, c, oa, ob, oc)
}

fn route(sites: &mut [&mut Site], envs: Vec<Envelope>, dead: &[SiteId]) {
    for e in envs {
        if dead.contains(&e.to) {
            continue;
        }
        if let Some(s) = sites.iter_mut().find(|s| s.id() == e.to) {
            s.handle_message(e);
        }
    }
}

fn pump_alive(sites: &mut [&mut Site], dead: &[SiteId]) {
    loop {
        let mut moved = false;
        let mut batch = Vec::new();
        for s in sites.iter_mut() {
            if dead.contains(&s.id()) {
                s.drain_outbox(); // dead sites' traffic vanishes
                continue;
            }
            batch.extend(s.drain_outbox());
        }
        if !batch.is_empty() {
            moved = true;
        }
        route(sites, batch, dead);
        if !moved {
            return;
        }
    }
}

#[test]
fn originator_failure_with_no_commit_aborts_in_doubt_txn() {
    // Site 3 originates an update; its WRITEs arrive but site 3 dies before
    // any COMMIT is seen → survivors must abort the in-doubt transaction.
    // Delegation is disabled so no site can decide alone.
    use decaf_core::SiteConfig;
    let cfg = SiteConfig {
        delegate_enabled: false,
        ..SiteConfig::default()
    };
    let mut a = Site::with_config(SiteId(1), cfg);
    let mut b = Site::with_config(SiteId(2), cfg);
    let mut c = Site::with_config(SiteId(3), cfg);
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    let oc = c.create_int(0);
    wiring::wire_replicas(&mut [(&mut a, oa), (&mut b, ob), (&mut c, oc)]);
    c.execute(Box::new(SetInt(oc, 50)));
    // Deliver only the WRITE messages (not the primary's verdicts back).
    let writes = c.drain_outbox();
    route(&mut [&mut a, &mut b], writes, &[]);
    // Swallow the primary's replies — site 3 "dies" now.
    a.drain_outbox();
    b.drain_outbox();
    assert_eq!(a.read_int_current(oa), Some(50), "optimistically applied");

    a.notify_site_failed(SiteId(3));
    b.notify_site_failed(SiteId(3));
    pump_alive(&mut [&mut a, &mut b, &mut c], &[SiteId(3)]);

    assert_eq!(
        a.read_int_current(oa),
        Some(0),
        "in-doubt update rolled back"
    );
    assert_eq!(b.read_int_current(ob), Some(0));
    // Graphs no longer include the failed site.
    assert_eq!(a.replication_graph(oa).unwrap().len(), 2);
    assert_eq!(b.replication_graph(ob).unwrap().len(), 2);
    // The survivors keep working.
    b.execute(Box::new(SetInt(ob, 7)));
    pump_alive(&mut [&mut a, &mut b, &mut c], &[SiteId(3)]);
    assert_eq!(a.read_int_committed(oa), Some(7));
}

#[test]
fn originator_failure_after_commit_seen_commits_everywhere() {
    // Site 3's transaction committed at site 1 (the delegate/primary) but
    // the COMMIT to site 2 is lost with site 3's failure. The §3.4 query
    // protocol must discover the commit and apply it at site 2.
    let (mut a, mut b, mut c, oa, ob, _oc) = trio();
    c.execute(Box::new(SetInt(_oc, 50)));
    let writes = c.drain_outbox();
    // Deliver everything to site 1 (primary+delegate) and the WRITE to 2.
    route(&mut [&mut a, &mut b], writes, &[]);
    // Site 1, as delegate, emits COMMITs; deliver the one to site 2? NO —
    // lose it, keep only knowledge at site 1.
    let commits = a.drain_outbox();
    assert!(commits.iter().any(|e| e.to == SiteId(2)));
    // (dropped)
    drop(commits);
    assert_eq!(a.read_int_committed(oa), Some(50), "committed at site 1");
    assert_eq!(b.read_int_committed(ob), Some(0), "site 2 unaware");

    a.notify_site_failed(SiteId(3));
    b.notify_site_failed(SiteId(3));
    pump_alive(&mut [&mut a, &mut b, &mut c], &[SiteId(3)]);

    assert_eq!(
        b.read_int_committed(ob),
        Some(50),
        "survivor query discovered the commit (§3.4)"
    );
}

#[test]
fn primary_failure_repairs_graph_by_consensus_and_retries() {
    // The primary (site 1, MinNode) fails while site 3 has a transaction
    // awaiting its confirmation. Survivors run the consensus repair; the
    // transaction is retried after the repair and commits under the new
    // primary.
    let (mut a, mut b, mut c, _oa, ob, oc) = trio();
    // Pre-commit a value so there's real state.
    b.execute(Box::new(SetInt(ob, 5)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);

    // Site 3 starts an increment; its messages reach nobody (primary dead).
    c.execute(Box::new(Incr(oc)));
    c.drain_outbox(); // lost with the failure
    assert_eq!(c.read_int_current(oc), Some(6), "optimistic local state");

    b.notify_site_failed(SiteId(1));
    c.notify_site_failed(SiteId(1));
    pump_alive(&mut [&mut a, &mut b, &mut c], &[SiteId(1)]);

    // Graphs repaired: only sites 2 and 3 remain; new primary is site 2.
    assert_eq!(b.replication_graph(ob).unwrap().len(), 2);
    assert_eq!(c.replication_graph(oc).unwrap().len(), 2);
    assert_eq!(b.primary_of(ob).unwrap().site, SiteId(2));
    assert_eq!(c.primary_of(oc).unwrap().site, SiteId(2));

    // The increment was aborted and retried post-repair; value converged.
    assert_eq!(b.read_int_committed(ob), Some(6));
    assert_eq!(c.read_int_committed(oc), Some(6));

    // New work proceeds under the new primary.
    c.execute(Box::new(Incr(oc)));
    pump_alive(&mut [&mut a, &mut b, &mut c], &[SiteId(1)]);
    assert_eq!(b.read_int_committed(ob), Some(7));
    assert_eq!(c.read_int_committed(oc), Some(7));
}

#[test]
fn non_primary_failure_uses_fast_path_repair() {
    // Site 3 (not the primary) fails: the live primary (site 1) coordinates
    // a normal timestamped graph update — no consensus needed.
    let (mut a, mut b, mut c, oa, ob, _oc) = trio();
    a.notify_site_failed(SiteId(3));
    b.notify_site_failed(SiteId(3));
    pump_alive(&mut [&mut a, &mut b, &mut c], &[SiteId(3)]);

    assert_eq!(a.replication_graph(oa).unwrap().len(), 2);
    assert_eq!(b.replication_graph(ob).unwrap().len(), 2);
    a.execute(Box::new(SetInt(oa, 3)));
    pump_alive(&mut [&mut a, &mut b, &mut c], &[SiteId(3)]);
    assert_eq!(b.read_int_committed(ob), Some(3));
}

#[test]
fn double_failure_leaves_single_survivor_functional() {
    let (mut a, mut b, mut c, _oa, ob, _oc) = trio();
    b.notify_site_failed(SiteId(1));
    pump_alive(&mut [&mut a, &mut b, &mut c], &[SiteId(1)]);
    b.notify_site_failed(SiteId(3));
    pump_alive(&mut [&mut a, &mut b, &mut c], &[SiteId(1), SiteId(3)]);

    assert_eq!(b.replication_graph(ob).unwrap().len(), 1);
    b.execute(Box::new(SetInt(ob, 9)));
    assert_eq!(
        b.read_int_committed(ob),
        Some(9),
        "sole survivor commits locally"
    );
    assert!(b.is_quiescent());
}

#[test]
fn duplicate_failure_notifications_are_idempotent() {
    let (mut a, mut b, mut c, oa, _ob, _oc) = trio();
    a.notify_site_failed(SiteId(3));
    a.notify_site_failed(SiteId(3));
    b.notify_site_failed(SiteId(3));
    pump_alive(&mut [&mut a, &mut b, &mut c], &[SiteId(3)]);
    assert_eq!(a.replication_graph(oa).unwrap().len(), 2);
    a.execute(Box::new(SetInt(oa, 1)));
    pump_alive(&mut [&mut a, &mut b, &mut c], &[SiteId(3)]);
    assert_eq!(b.read_int_committed(_ob), Some(1));
}

#[test]
fn queue_retry_after_repair_reexecutes_once_repair_lands() {
    // A transaction parked for post-repair retry must re-execute as soon
    // as the (fast-path) graph repair flushes the queue — and not before.
    let (mut a, mut b, mut c, oa, ob, _oc) = trio();
    a.queue_retry_after_repair(Box::new(Incr(oa)));
    assert_eq!(a.read_int_current(oa), Some(0), "parked, not executed");
    assert_eq!(a.stats().retries, 0);

    // Site 3 (not the primary) fails: site 1 runs the fast-path repair,
    // whose completion flushes the parked retry.
    a.notify_site_failed(SiteId(3));
    b.notify_site_failed(SiteId(3));
    pump_alive(&mut [&mut a, &mut b, &mut c], &[SiteId(3)]);

    assert_eq!(a.stats().retries, 1, "flush counts as a retry");
    assert_eq!(a.read_int_committed(oa), Some(1));
    assert_eq!(b.read_int_committed(ob), Some(1));
}

#[test]
fn parked_retries_wait_for_consensus_repair() {
    // When the dead site was the primary, repair goes through the
    // consensus fallback — parked retries must stay parked until the
    // repaired graph is applied, then run against it.
    let (mut a, mut b, mut c, _oa, ob, oc) = trio();
    b.queue_retry_after_repair(Box::new(Incr(ob)));

    b.notify_site_failed(SiteId(1));
    assert_eq!(
        b.read_int_current(ob),
        Some(0),
        "consensus round in flight: the retry must not have run yet"
    );

    c.notify_site_failed(SiteId(1));
    pump_alive(&mut [&mut a, &mut b, &mut c], &[SiteId(1)]);

    assert_eq!(b.primary_of(ob).unwrap().site, SiteId(2));
    assert_eq!(b.read_int_committed(ob), Some(1));
    assert_eq!(c.read_int_committed(oc), Some(1));
}

/// Pumps `a` and `b` to quiescence, delivering to `c` whatever is
/// addressed to it, while *holding* everything `c` emits — a one-way
/// stalled link, the shape that starves a straggler of fresh state.
fn pump_holding(a: &mut Site, b: &mut Site, c: &mut Site, held: &mut Vec<Envelope>) {
    loop {
        held.extend(c.drain_outbox());
        let batch: Vec<Envelope> = a
            .drain_outbox()
            .into_iter()
            .chain(b.drain_outbox())
            .collect();
        if batch.is_empty() {
            held.extend(c.drain_outbox());
            return;
        }
        for e in batch {
            if e.to == a.id() {
                a.handle_message(e);
            } else if e.to == b.id() {
                b.handle_message(e);
            } else {
                c.handle_message(e);
            }
        }
    }
}

#[test]
fn retry_budget_is_consumed_then_exhaustion_aborts_for_good() {
    // A straggler whose every retry is denied: site 3 increments from
    // stale state with a budget of ONE retry; between each of its attempts
    // reaching the primary, site 2 commits another conflicting increment.
    // Attempt 1 is denied (budget spent, retried=true), attempt 2 is
    // denied with the budget gone — the abort must be final, surfaced to
    // the handle and to `Transaction::handle_abort` exactly once.
    use decaf_core::{SiteConfig, TxnOutcome};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    struct CountingIncr(ObjectName, Arc<AtomicU32>);
    impl Transaction for CountingIncr {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            let v = ctx.read_int(self.0)?;
            ctx.write_int(self.0, v + 1)
        }
        fn handle_abort(&mut self, _reason: &decaf_core::AbortReason) {
            self.1.fetch_add(1, Ordering::SeqCst);
        }
    }

    let cfg = SiteConfig {
        retry_budget: 1,
        ..SiteConfig::default()
    };
    let mut a = Site::with_config(SiteId(1), cfg);
    let mut b = Site::with_config(SiteId(2), cfg);
    let mut c = Site::with_config(SiteId(3), cfg);
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    let oc = c.create_int(0);
    wiring::wire_replicas(&mut [(&mut a, oa), (&mut b, ob), (&mut c, oc)]);

    let aborts = Arc::new(AtomicU32::new(0));
    let h = c.execute(Box::new(CountingIncr(oc, Arc::clone(&aborts))));
    let mut held: Vec<Envelope> = c.drain_outbox();

    // Site 2 commits a conflicting increment everywhere while c's attempt
    // is still in flight (held).
    b.execute(Box::new(Incr(ob)));
    pump_holding(&mut a, &mut b, &mut c, &mut held);
    assert_eq!(c.read_int_committed(oc), Some(1));

    // Release attempt 1: the primary denies it (a commit landed inside its
    // read interval), c consumes its one retry and re-submits — held again.
    for e in std::mem::take(&mut held) {
        if e.to == a.id() {
            a.handle_message(e);
        } else if e.to == b.id() {
            b.handle_message(e);
        }
    }
    pump_holding(&mut a, &mut b, &mut c, &mut held);
    assert_eq!(c.stats().retries, 1, "the single budgeted retry ran");
    assert_eq!(c.txn_outcome(h), None, "retry still in flight");
    assert_eq!(
        aborts.load(Ordering::SeqCst),
        0,
        "not surfaced while retryable"
    );

    // Another conflicting commit lands before the retry reaches the
    // primary.
    b.execute(Box::new(Incr(ob)));
    pump_holding(&mut a, &mut b, &mut c, &mut held);
    assert_eq!(c.read_int_committed(oc), Some(2));

    // Release attempt 2: denied again, and the budget is gone.
    for e in std::mem::take(&mut held) {
        if e.to == a.id() {
            a.handle_message(e);
        } else if e.to == b.id() {
            b.handle_message(e);
        }
    }
    pump_holding(&mut a, &mut b, &mut c, &mut held);

    assert_eq!(c.txn_outcome(h), Some(TxnOutcome::Aborted), "final abort");
    assert_eq!(c.stats().retries, 1, "no retry past the budget");
    assert_eq!(
        aborts.load(Ordering::SeqCst),
        1,
        "handle_abort exactly once"
    );
    // The final abort event is marked non-retried; the budgeted one was.
    let events = c.drain_events();
    let aborted: Vec<bool> = events
        .iter()
        .filter_map(|e| match e {
            decaf_core::EngineEvent::TxnAborted {
                local_origin: true,
                retried,
                ..
            } => Some(*retried),
            _ => None,
        })
        .collect();
    assert_eq!(aborted, vec![true, false], "one budgeted retry, then final");

    // Let c's abort notices drain; the mesh converges without c's incr.
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);
    for (site, obj) in [(&a, oa), (&b, ob), (&c, oc)] {
        assert_eq!(site.read_int_committed(obj), Some(2));
    }
}

#[test]
fn unrelated_objects_survive_failure_untouched() {
    let (mut a, mut b, mut c, _oa, _ob, _oc) = trio();
    // A private (unshared) object at site 1.
    let private = a.create_int(123);
    a.notify_site_failed(SiteId(3));
    b.notify_site_failed(SiteId(3));
    pump_alive(&mut [&mut a, &mut b, &mut c], &[SiteId(3)]);
    assert_eq!(a.read_int_committed(private), Some(123));
    assert_eq!(a.replication_graph(private).unwrap().len(), 1);
}
