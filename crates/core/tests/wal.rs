//! Write-ahead commit log tests (DESIGN.md §S20): golden frame bytes pin
//! the on-disk format, a property test proves truncation at *any* byte
//! offset recovers exactly the longest valid record prefix, and
//! `CommitLog`/`Site::recover` round trips exercise the full crash-restart
//! path on a real filesystem.

use std::path::PathBuf;

use decaf_core::{
    append_frame, crc32, scan_wal, wiring, CommitLog, CommitRecord, ObjectName, Site, SiteConfig,
    Transaction, TxnCtx, TxnError, WalError, WalRecord, WAL_FORMAT_VERSION,
};
use decaf_vt::{SiteId, VirtualTime};

struct Incr(ObjectName);
impl Transaction for Incr {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + 1)
    }
}

fn durable_config() -> SiteConfig {
    SiteConfig {
        durable: true,
        ..SiteConfig::default()
    }
}

fn vt(lamport: u64, site: u32) -> VirtualTime {
    VirtualTime::new(lamport, SiteId(site))
}

fn sample_commit(lamport: u64) -> CommitRecord {
    CommitRecord {
        vt: vt(lamport, 1),
        origin: SiteId(1),
        updates: vec![],
    }
}

/// A scratch directory under the system temp dir, cleaned before use.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("decaf-wal-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---- golden bytes: the WAL frame layout is pinned -------------------------

/// The frame layout — version byte, kind byte, LE length, LE CRC over
/// header-plus-payload, then the serde_json payload — must never drift
/// without a `WAL_FORMAT_VERSION` bump: a silent change would make old
/// logs unreadable (or worse, misread).
#[test]
fn golden_commit_frame_bytes() {
    let mut buf = Vec::new();
    append_frame(&mut buf, &WalRecord::Commit(sample_commit(3)));

    let payload = br#"{"vt":{"lamport":3,"site":1},"origin":1,"updates":[]}"#;
    assert_eq!(buf[0], WAL_FORMAT_VERSION, "format-version byte");
    assert_eq!(buf[0], 1, "this build writes WAL format 1");
    assert_eq!(buf[1], 1, "kind byte 1 = Commit");
    assert_eq!(
        &buf[2..6],
        (payload.len() as u32).to_le_bytes(),
        "LE payload length"
    );
    assert_eq!(&buf[10..], payload, "serde_json payload");

    // The CRC covers the first six header bytes plus the payload.
    let mut covered = buf[..6].to_vec();
    covered.extend_from_slice(payload);
    assert_eq!(&buf[6..10], crc32(&covered).to_le_bytes(), "LE CRC-32");
}

#[test]
fn golden_checkpoint_frame_has_kind_two() {
    let site = Site::new(SiteId(4));
    let cp = site.checkpoint().expect("fresh site is quiescent");
    let mut buf = Vec::new();
    append_frame(&mut buf, &WalRecord::Checkpoint(Box::new(cp)));
    assert_eq!(buf[0], WAL_FORMAT_VERSION);
    assert_eq!(buf[1], 2, "kind byte 2 = Checkpoint");
    let len = u32::from_le_bytes(buf[2..6].try_into().unwrap()) as usize;
    assert_eq!(buf.len(), 10 + len);
}

#[test]
fn crc32_known_vector() {
    // Standard IEEE check value; pins the polynomial and reflection.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
}

// ---- torn tails vs schema mismatches --------------------------------------

fn sample_log() -> (Vec<u8>, Vec<usize>) {
    // A realistic log: baseline checkpoint, commits, inline checkpoint,
    // more commits — with record boundaries for the truncation oracle.
    let site = Site::new(SiteId(1));
    let cp = site.checkpoint().expect("quiescent");
    let records = vec![
        WalRecord::Checkpoint(Box::new(cp.clone())),
        WalRecord::Commit(sample_commit(2)),
        WalRecord::Commit(sample_commit(3)),
        WalRecord::Checkpoint(Box::new(cp)),
        WalRecord::Commit(sample_commit(4)),
    ];
    let mut bytes = Vec::new();
    let mut boundaries = vec![0usize];
    for r in &records {
        append_frame(&mut bytes, r);
        boundaries.push(bytes.len());
    }
    (bytes, boundaries)
}

#[test]
fn scan_recovers_full_log() {
    let (bytes, boundaries) = sample_log();
    let scan = scan_wal(&bytes).expect("intact log");
    assert_eq!(scan.records.len(), boundaries.len() - 1);
    assert_eq!(scan.valid_len, bytes.len());
    assert!(!scan.truncated_at(bytes.len()));
}

/// A complete, CRC-valid frame with a foreign version byte is a schema
/// mismatch, not a torn tail: the reader must refuse loudly.
#[test]
fn unknown_version_fails_loudly() {
    let mut bytes = Vec::new();
    append_frame(&mut bytes, &WalRecord::Commit(sample_commit(2)));
    // Re-stamp the version byte and fix up the CRC so the frame is intact.
    bytes[0] = WAL_FORMAT_VERSION + 1;
    let crc = {
        let mut covered = bytes[..6].to_vec();
        covered.extend_from_slice(&bytes[10..]);
        crc32(&covered)
    };
    bytes[6..10].copy_from_slice(&crc.to_le_bytes());
    match scan_wal(&bytes) {
        Err(WalError::UnsupportedVersion { found }) => {
            assert_eq!(found, WAL_FORMAT_VERSION + 1);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn unknown_kind_fails_loudly() {
    let mut bytes = Vec::new();
    append_frame(&mut bytes, &WalRecord::Commit(sample_commit(2)));
    bytes[1] = 9;
    let crc = {
        let mut covered = bytes[..6].to_vec();
        covered.extend_from_slice(&bytes[10..]);
        crc32(&covered)
    };
    bytes[6..10].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        scan_wal(&bytes),
        Err(WalError::UnknownKind { found: 9 })
    ));
}

#[test]
fn undecodable_payload_fails_loudly() {
    // An integrity-checked frame whose payload the schema cannot decode is
    // a schema bug (a change without a version bump), never a silent skip.
    let payload = b"not json";
    let mut bytes = vec![WAL_FORMAT_VERSION, 1];
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = {
        let mut covered = bytes.clone();
        covered.extend_from_slice(payload);
        crc32(&covered)
    };
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes.extend_from_slice(payload);
    assert!(matches!(
        scan_wal(&bytes),
        Err(WalError::SchemaMismatch { kind: 1, .. })
    ));
}

/// Any single corrupted byte in the final record reads as a torn tail (the
/// CRC covers header and payload alike), so the prefix survives.
#[test]
fn corrupt_final_record_is_torn_not_fatal() {
    let (bytes, boundaries) = sample_log();
    let last_start = boundaries[boundaries.len() - 2];
    for pos in last_start..bytes.len() {
        let mut copy = bytes.clone();
        copy[pos] ^= 0x55;
        let scan = scan_wal(&copy).expect("corruption reads as torn tail");
        assert_eq!(scan.records.len(), boundaries.len() - 2, "byte {pos}");
        assert_eq!(scan.valid_len, last_start, "byte {pos}");
    }
}

mod truncation_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// ISSUE acceptance property: truncating a valid log at ANY byte
        /// offset recovers exactly the longest valid record prefix — never
        /// a panic, never a partially decoded record.
        #[test]
        fn any_byte_truncation_recovers_longest_valid_prefix(cut_seed in 0usize..10_000) {
            let (bytes, boundaries) = sample_log();
            let cut = cut_seed % (bytes.len() + 1);
            let scan = scan_wal(&bytes[..cut]).expect("truncation is never a schema error");
            // The longest prefix of whole records that fits in `cut` bytes:
            let expect = boundaries.iter().filter(|b| **b <= cut).count() - 1;
            prop_assert_eq!(scan.records.len(), expect);
            prop_assert_eq!(scan.valid_len, boundaries[expect]);
            prop_assert_eq!(scan.truncated_at(cut), cut != boundaries[expect]);
        }
    }
}

// ---- CommitLog on a real filesystem ---------------------------------------

#[test]
fn commit_log_round_trips_across_reopen() {
    let dir = scratch_dir("reopen");
    let site = Site::new(SiteId(1));
    let cp = site.checkpoint().unwrap();

    let (mut log, scan) = CommitLog::open(&dir).expect("fresh dir");
    assert!(scan.records.is_empty());
    log.append_checkpoint(&cp).unwrap();
    log.append_commit(&sample_commit(2)).unwrap();
    log.append_commit(&sample_commit(3)).unwrap();
    let len = log.len_bytes();
    drop(log);

    let (log, scan) = CommitLog::open(&dir).expect("reopen");
    assert_eq!(log.len_bytes(), len);
    assert_eq!(scan.records.len(), 3);
    assert!(matches!(&scan.records[0], WalRecord::Checkpoint(_)));
    match &scan.records[2] {
        WalRecord::Commit(c) => assert_eq!(c.vt, vt(3, 1)),
        other => panic!("expected commit, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_on_disk_is_truncated_and_appends_resume() {
    let dir = scratch_dir("torn");
    let site = Site::new(SiteId(1));
    let cp = site.checkpoint().unwrap();
    let (mut log, _) = CommitLog::open(&dir).unwrap();
    log.append_checkpoint(&cp).unwrap();
    log.append_commit(&sample_commit(2)).unwrap();
    let valid = log.len_bytes();
    let path = log.path().to_path_buf();
    drop(log);

    // Simulate a crash mid-append: half of a frame, then garbage.
    let mut tail = Vec::new();
    append_frame(&mut tail, &WalRecord::Commit(sample_commit(3)));
    tail.truncate(tail.len() / 2);
    tail.extend_from_slice(b"\xde\xad\xbe\xef");
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&tail).unwrap();
    }

    let (mut log, scan) = CommitLog::open(&dir).expect("torn tail tolerated");
    assert_eq!(scan.records.len(), 2, "prefix survives");
    assert_eq!(log.len_bytes(), valid, "tail truncated away");
    assert_eq!(std::fs::metadata(&path).unwrap().len(), valid);

    // Appends after recovery land on the valid prefix.
    log.append_commit(&sample_commit(4)).unwrap();
    drop(log);
    let (_, scan) = CommitLog::open(&dir).unwrap();
    assert_eq!(scan.records.len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_drops_covered_prefix() {
    let dir = scratch_dir("compact");
    let site = Site::new(SiteId(1));
    let cp = site.checkpoint().unwrap();
    let (mut log, _) = CommitLog::open(&dir).unwrap();
    log.append_checkpoint(&cp).unwrap();
    for l in 2..30 {
        log.append_commit(&sample_commit(l)).unwrap();
    }
    let before = log.len_bytes();
    log.compact(&cp).unwrap();
    assert!(log.len_bytes() < before, "compaction shrinks the log");
    log.append_commit(&sample_commit(30)).unwrap();
    drop(log);

    let (_, scan) = CommitLog::open(&dir).unwrap();
    assert_eq!(scan.records.len(), 2, "one checkpoint, one fresh commit");
    assert!(matches!(&scan.records[0], WalRecord::Checkpoint(_)));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- Site-level recovery --------------------------------------------------

#[test]
fn durable_site_recovers_committed_state_from_wal() {
    let dir = scratch_dir("recover");
    let counter;
    {
        let mut site = Site::with_config(SiteId(1), durable_config());
        counter = site.create_int(0);
        let (mut log, _) = CommitLog::open(&dir).unwrap();
        log.append_checkpoint(&site.checkpoint().unwrap()).unwrap();
        for _ in 0..5 {
            site.execute(Box::new(Incr(counter)));
        }
        for rec in site.drain_wal() {
            log.append_commit(&rec).unwrap();
        }
        assert_eq!(site.committed_log_len(), 5);
        // Crash: site and log dropped without a final checkpoint.
    }

    let (recovery, _log) = Site::recover(&dir, durable_config()).expect("recover");
    assert_eq!(recovery.replayed, 5, "commit suffix replayed");
    let frontier = recovery.frontier.expect("five commits recovered");
    assert_eq!(frontier.site, SiteId(1));
    let mut site = recovery.site;
    assert_eq!(site.read_int_committed(counter), Some(5));
    assert_eq!(site.committed_log_len(), 5, "catch-up log rebuilt");
    // The clock resumes strictly ahead of everything logged: the next
    // commit's VT lands past the recovered frontier.
    site.execute(Box::new(Incr(counter)));
    assert_eq!(site.read_int_committed(counter), Some(6));
    let fresh = site.drain_wal();
    assert_eq!(fresh.len(), 1, "only the new commit is queued for the WAL");
    assert!(fresh[0].vt > frontier);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_without_checkpoint_fails_loudly() {
    let dir = scratch_dir("nocp");
    let (mut log, _) = CommitLog::open(&dir).unwrap();
    log.append_commit(&sample_commit(2)).unwrap();
    drop(log);
    assert!(matches!(
        Site::recover(&dir, SiteConfig::default()),
        Err(WalError::NoCheckpoint)
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replica_pair_logs_identical_commit_sets() {
    let mut a = Site::with_config(SiteId(1), durable_config());
    let mut b = Site::with_config(SiteId(2), durable_config());
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    wiring::wire_pair(&mut a, oa, &mut b, ob);
    a.execute(Box::new(Incr(oa)));
    b.execute(Box::new(Incr(ob)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);

    let vts = |recs: Vec<CommitRecord>| {
        let mut v: Vec<VirtualTime> = recs.into_iter().map(|r| r.vt).collect();
        v.sort();
        v
    };
    let wa = vts(a.drain_wal());
    let wb = vts(b.drain_wal());
    assert!(!wa.is_empty());
    assert_eq!(wa, wb, "both replicas log the same committed VTs");
    // Draining leaves the in-memory catch-up log intact.
    assert_eq!(a.committed_log_len(), wa.len());
    assert!(a.drain_wal().is_empty(), "drain is a take, not a copy");
}

#[test]
fn drain_and_checkpoint_reaches_quiescence_locally() {
    let mut site = Site::with_config(SiteId(1), durable_config());
    let counter = site.create_int(0);
    site.execute(Box::new(Incr(counter)));
    // A lone site commits locally; any parked work drains without a peer.
    let cp = site
        .drain_and_checkpoint(16)
        .expect("single site reaches quiescence");
    assert_eq!(cp.site, SiteId(1));
    assert!(cp.object_count() >= 1);
}
