//! View-notification integration tests (paper §4): optimistic and
//! pessimistic delivery, commit notifications, rollback reruns, lost
//! updates, and monotonicity.

use decaf_core::{
    wiring, ObjectName, RecordingView, ScalarValue, Site, Transaction, TxnCtx, TxnError, ViewEvent,
    ViewMode,
};
use decaf_vt::SiteId;

struct SetInt(ObjectName, i64);
impl Transaction for SetInt {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.write_int(self.0, self.1)
    }
}

struct Incr(ObjectName);
impl Transaction for Incr {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + 1)
    }
}

fn pair() -> (Site, Site, ObjectName, ObjectName) {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    wiring::wire_pair(&mut a, oa, &mut b, ob);
    (a, b, oa, ob)
}

fn values_of(events: &[ViewEvent]) -> Vec<i64> {
    events
        .iter()
        .filter_map(|e| match e {
            ViewEvent::Update { values, .. } => values.first().and_then(|(_, v)| match v {
                ScalarValue::Int(i) => Some(*i),
                _ => None,
            }),
            ViewEvent::Commit => None,
        })
        .collect()
}

#[test]
fn optimistic_view_notified_immediately_then_committed() {
    // Originate at site 2 so the primary (site 1) is remote: the update
    // notification precedes the commit by a full round trip.
    let (mut a, mut b, _oa, ob) = pair();
    let view = RecordingView::new(vec![ob]);
    let log = view.log();
    b.attach_view(Box::new(view), &[ob], ViewMode::Optimistic);

    b.execute(Box::new(Incr(ob)));
    // Update notification fires before any message is delivered (§4.1).
    {
        let events = log.lock().unwrap();
        assert_eq!(values_of(&events), vec![1]);
        assert!(!events.contains(&ViewEvent::Commit), "not yet committed");
    }
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    let events = log.lock().unwrap();
    assert_eq!(events.last(), Some(&ViewEvent::Commit));
    assert_eq!(b.stats().opt_notifications, 1);
    assert_eq!(b.stats().opt_commits, 1);
}

#[test]
fn optimistic_view_at_replica_sees_remote_update() {
    let (mut a, mut b, _oa, ob) = pair();
    let view = RecordingView::new(vec![ob]);
    let log = view.log();
    b.attach_view(Box::new(view), &[ob], ViewMode::Optimistic);

    a.execute(Box::new(SetInt(_oa, 9)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    let events = log.lock().unwrap();
    assert_eq!(values_of(&events), vec![9]);
    assert_eq!(events.last(), Some(&ViewEvent::Commit));
}

#[test]
fn pessimistic_view_sees_only_committed_values_in_order() {
    let (mut a, mut b, _oa, ob) = pair();
    let view = RecordingView::new(vec![ob]);
    let log = view.log();
    b.attach_view(Box::new(view), &[ob], ViewMode::Pessimistic);

    for i in 1..=4 {
        a.execute(Box::new(SetInt(_oa, i)));
        wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    }
    let events = log.lock().unwrap();
    // Lossless, monotonic, no Commit events (pessimistic views never get
    // them — every shown value is committed).
    assert_eq!(values_of(&events), vec![1, 2, 3, 4]);
    assert!(!events.contains(&ViewEvent::Commit));
    assert_eq!(b.stats().pess_notifications, 4);
}

#[test]
fn pessimistic_view_not_notified_of_uncommitted_update() {
    let (mut a, mut b, _oa, ob) = pair();
    let view = RecordingView::new(vec![ob]);
    let log = view.log();
    b.attach_view(Box::new(view), &[ob], ViewMode::Pessimistic);

    a.execute(Box::new(SetInt(_oa, 5)));
    // Deliver only the WRITE to b, not the commit.
    let writes = a.drain_outbox();
    for e in writes {
        b.handle_message(e);
    }
    assert_eq!(
        b.read_int_current(ob),
        Some(5),
        "update applied optimistically"
    );
    assert!(
        log.lock().unwrap().is_empty(),
        "pessimistic view must wait for the commit"
    );
    // Now let the commit flow.
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(values_of(&log.lock().unwrap()), vec![5]);
}

#[test]
fn pessimistic_view_at_originator_notified_on_local_commit() {
    let (mut a, mut b, oa, _ob) = pair();
    let view = RecordingView::new(vec![oa]);
    let log = view.log();
    a.attach_view(Box::new(view), &[oa], ViewMode::Pessimistic);

    // A blind write whose primary is this very site commits immediately
    // (§5.1.1), so the pessimistic notification is also immediate.
    a.execute(Box::new(SetInt(oa, 7)));
    assert_eq!(values_of(&log.lock().unwrap()), vec![7]);
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(values_of(&log.lock().unwrap()), vec![7]);
}

#[test]
fn optimistic_update_inconsistency_counted_on_abort() {
    // Site 2's optimistic view shows its own uncommitted increment; a
    // conflicting increment from site 1 wins at the primary, so site 2's
    // transaction aborts and the view reruns with the corrected value.
    let (mut a, mut b, oa, ob) = pair();
    let view = RecordingView::new(vec![ob]);
    let log = view.log();
    b.attach_view(Box::new(view), &[ob], ViewMode::Optimistic);

    a.execute(Box::new(Incr(oa))); // will win at primary (site 1)
    b.execute(Box::new(Incr(ob))); // shown optimistically, then aborted
    {
        let events = log.lock().unwrap();
        assert_eq!(values_of(&events), vec![1], "optimistic first view");
    }
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(b.read_int_committed(ob), Some(2));
    let events = log.lock().unwrap();
    // The view eventually shows the correct value 2 and commits.
    assert_eq!(*values_of(&events).last().unwrap(), 2);
    assert_eq!(events.last(), Some(&ViewEvent::Commit));
    assert!(
        b.stats().update_inconsistencies >= 1,
        "the aborted value had been shown: {:?}",
        b.stats()
    );
    assert!(b.stats().snapshot_reruns >= 1);
}

#[test]
fn lost_update_counted_for_straggler() {
    // Three sites; site 3 watches optimistically. Updates from sites 1 and
    // 2 race; we deliver the later-VT one first so the earlier becomes a
    // straggler at site 3.
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let mut c = Site::new(SiteId(3));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    let oc = c.create_int(0);
    wiring::wire_replicas(&mut [(&mut a, oa), (&mut b, ob), (&mut c, oc)]);
    let view = RecordingView::new(vec![oc]);
    let log = view.log();
    c.attach_view(Box::new(view), &[oc], ViewMode::Optimistic);

    // Both blind-write concurrently. a's VT (1@S1) < b's VT (1@S2).
    a.execute(Box::new(SetInt(oa, 10)));
    b.execute(Box::new(SetInt(ob, 20)));
    let a_out = a.drain_outbox();
    let b_out = b.drain_outbox();
    // Deliver b's (later VT) write to c first...
    for e in b_out {
        match e.to {
            SiteId(1) => a.handle_message(e),
            SiteId(3) => c.handle_message(e),
            _ => unreachable!(),
        }
    }
    assert_eq!(values_of(&log.lock().unwrap()), vec![20]);
    // ... then a's earlier write arrives: a straggler, no new notification.
    for e in a_out {
        match e.to {
            SiteId(2) => b.handle_message(e),
            SiteId(3) => c.handle_message(e),
            _ => unreachable!(),
        }
    }
    assert_eq!(
        values_of(&log.lock().unwrap()),
        vec![20],
        "the straggler yields no notification (lost update, §5.1.2)"
    );
    assert_eq!(c.stats().lost_updates, 1);
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);
    assert_eq!(c.read_int_committed(oc), Some(20));
}

#[test]
fn multi_object_snapshot_is_consistent() {
    // A view attached to two objects updated by one transaction sees both
    // new values in a single notification.
    struct SetBoth(ObjectName, ObjectName);
    impl Transaction for SetBoth {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            ctx.write_int(self.0, 1)?;
            ctx.write_int(self.1, 2)
        }
    }
    let mut a = Site::new(SiteId(1));
    let x = a.create_int(0);
    let y = a.create_int(0);
    let view = RecordingView::new(vec![x, y]);
    let log = view.log();
    a.attach_view(Box::new(view), &[x, y], ViewMode::Optimistic);

    a.execute(Box::new(SetBoth(x, y)));
    let events = log.lock().unwrap();
    match &events[0] {
        ViewEvent::Update { changed, values } => {
            assert_eq!(changed.len(), 2, "both objects on the changed list");
            assert_eq!(
                values,
                &vec![(x, ScalarValue::Int(1)), (y, ScalarValue::Int(2))]
            );
        }
        e => panic!("expected update, got {e:?}"),
    }
}

#[test]
fn changed_list_excludes_unchanged_objects() {
    let mut a = Site::new(SiteId(1));
    let x = a.create_int(0);
    let y = a.create_int(0);
    let view = RecordingView::new(vec![x, y]);
    let log = view.log();
    a.attach_view(Box::new(view), &[x, y], ViewMode::Optimistic);

    a.execute(Box::new(SetInt(x, 5)));
    let events = log.lock().unwrap();
    match &events[0] {
        ViewEvent::Update { changed, .. } => {
            assert_eq!(changed, &vec![x], "only x changed (§2.5)");
        }
        e => panic!("expected update, got {e:?}"),
    }
}

#[test]
fn view_on_list_notified_of_child_changes() {
    use decaf_core::Blueprint;
    struct Push(ObjectName, i64);
    impl Transaction for Push {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            ctx.list_push(self.0, Blueprint::Int(self.1))?;
            Ok(())
        }
    }
    struct WriteChild(ObjectName, i64);
    impl Transaction for WriteChild {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            let child = ctx.list_child(self.0, 0)?;
            ctx.write_int(child, self.1)
        }
    }
    let mut a = Site::new(SiteId(1));
    let list = a.create_list();
    let view = RecordingView::new(vec![]);
    let log = view.log();
    a.attach_view(Box::new(view), &[list], ViewMode::Optimistic);

    a.execute(Box::new(Push(list, 1)));
    a.execute(Box::new(WriteChild(list, 42)));
    let events = log.lock().unwrap();
    let updates = events
        .iter()
        .filter(|e| matches!(e, ViewEvent::Update { .. }))
        .count();
    assert_eq!(
        updates, 2,
        "structural change and child change both notify the list's view"
    );
}

#[test]
fn detached_view_stops_receiving() {
    let mut a = Site::new(SiteId(1));
    let x = a.create_int(0);
    let view = RecordingView::new(vec![x]);
    let log = view.log();
    let vid = a.attach_view(Box::new(view), &[x], ViewMode::Optimistic);
    a.execute(Box::new(SetInt(x, 1)));
    assert_eq!(log.lock().unwrap().len(), 2, "update + commit");
    a.detach_view(vid);
    a.execute(Box::new(SetInt(x, 2)));
    assert_eq!(log.lock().unwrap().len(), 2, "no events after detach");
}

#[test]
fn view_initiated_transaction_runs() {
    // A view that mirrors x into y via a spawned transaction (§2.5: "the
    // update method may initiate new transactions").
    struct Mirror {
        src: ObjectName,
        dst: ObjectName,
    }
    impl decaf_core::View for Mirror {
        fn update(&mut self, n: &decaf_core::UpdateNotification<'_>) {
            if let Ok(v) = n.read_int(self.src) {
                n.initiate(Box::new(SetInt(self.dst, v * 10)));
            }
        }
    }
    let mut a = Site::new(SiteId(1));
    let x = a.create_int(0);
    let y = a.create_int(0);
    a.attach_view(
        Box::new(Mirror { src: x, dst: y }),
        &[x],
        ViewMode::Optimistic,
    );
    a.execute(Box::new(SetInt(x, 3)));
    assert_eq!(a.read_int_committed(y), Some(30));
}

#[test]
fn pessimistic_monotonic_despite_delivery_order() {
    // Two committed updates reach the watcher out of VT order; the
    // pessimistic view must still deliver them in VT order.
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let mut c = Site::new(SiteId(3));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    let oc = c.create_int(0);
    wiring::wire_replicas(&mut [(&mut a, oa), (&mut b, ob), (&mut c, oc)]);
    let view = RecordingView::new(vec![oc]);
    let log = view.log();
    c.attach_view(Box::new(view), &[oc], ViewMode::Pessimistic);

    // Two sequential committed updates; hold site 3's copies.
    a.execute(Box::new(SetInt(oa, 1)));
    let mut held_c: Vec<_> = Vec::new();
    let pass = |a: &mut Site, b: &mut Site, held_c: &mut Vec<decaf_core::Envelope>| loop {
        let mut moved = false;
        for e in a.drain_outbox().into_iter().chain(b.drain_outbox()) {
            moved = true;
            match e.to {
                SiteId(1) => a.handle_message(e),
                SiteId(2) => b.handle_message(e),
                SiteId(3) => held_c.push(e),
                _ => unreachable!(),
            }
        }
        if !moved {
            break;
        }
    };
    pass(&mut a, &mut b, &mut held_c);
    a.execute(Box::new(SetInt(oa, 2)));
    pass(&mut a, &mut b, &mut held_c);

    // Deliver to site 3 in REVERSE order.
    held_c.reverse();
    for e in held_c {
        c.handle_message(e);
    }
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);
    let events = log.lock().unwrap();
    assert_eq!(
        values_of(&events),
        vec![1, 2],
        "monotonic order despite reversed delivery"
    );
}
