//! Protocol-level integration tests for the DECAF concurrency-control
//! algorithm (paper §3): update propagation, guess checking, commit/abort,
//! retry, delegation, and garbage collection.

use decaf_core::{
    wiring, Envelope, Message, ObjectName, PrimarySelector, Site, SiteConfig, Transaction, TxnCtx,
    TxnError, TxnOutcome,
};
use decaf_vt::SiteId;

struct SetInt(ObjectName, i64);
impl Transaction for SetInt {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.write_int(self.0, self.1) // blind write
    }
}

struct Incr(ObjectName);
impl Transaction for Incr {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + 1)
    }
}

struct FailingTxn(ObjectName);
impl Transaction for FailingTxn {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.write_int(self.0, 999)?;
        Err(TxnError::app("deliberate failure"))
    }
}

/// Two sites with one wired replicated integer each.
fn pair() -> (Site, Site, ObjectName, ObjectName) {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    wiring::wire_pair(&mut a, oa, &mut b, ob);
    (a, b, oa, ob)
}

fn pump(a: &mut Site, b: &mut Site) {
    wiring::run_to_quiescence(&mut [a, b]);
}

#[test]
fn single_site_txn_commits_immediately() {
    let mut a = Site::new(SiteId(1));
    let o = a.create_int(10);
    let h = a.execute(Box::new(Incr(o)));
    assert_eq!(a.txn_outcome(h), Some(TxnOutcome::Committed));
    assert_eq!(a.read_int_committed(o), Some(11));
    assert!(a.is_quiescent());
    assert_eq!(a.stats().msgs_sent, 0, "no replicas, no messages");
}

#[test]
fn two_site_update_reaches_replica_and_commits() {
    let (mut a, mut b, oa, ob) = pair();
    let h = a.execute(Box::new(SetInt(oa, 42)));
    // Before delivery: replica unchanged, originator optimistic.
    assert_eq!(a.read_int_current(oa), Some(42));
    assert_eq!(b.read_int_current(ob), Some(0));
    pump(&mut a, &mut b);
    assert_eq!(a.txn_outcome(h), Some(TxnOutcome::Committed));
    assert_eq!(a.read_int_committed(oa), Some(42));
    assert_eq!(b.read_int_committed(ob), Some(42));
}

#[test]
fn update_from_non_primary_site_commits_too() {
    // Primary (MinNode) is site 1; originate at site 2.
    let (mut a, mut b, oa, ob) = pair();
    assert_eq!(a.primary_of(oa).unwrap().site, SiteId(1));
    let h = b.execute(Box::new(SetInt(ob, 7)));
    pump(&mut a, &mut b);
    assert_eq!(b.txn_outcome(h), Some(TxnOutcome::Committed));
    assert_eq!(a.read_int_committed(oa), Some(7));
    assert_eq!(b.read_int_committed(ob), Some(7));
}

#[test]
fn sequential_increments_from_both_sites_serialize() {
    let (mut a, mut b, oa, ob) = pair();
    for _ in 0..5 {
        a.execute(Box::new(Incr(oa)));
        pump(&mut a, &mut b);
        b.execute(Box::new(Incr(ob)));
        pump(&mut a, &mut b);
    }
    assert_eq!(a.read_int_committed(oa), Some(10));
    assert_eq!(b.read_int_committed(ob), Some(10));
    assert_eq!(a.stats().txns_aborted_conflict, 0);
    assert_eq!(b.stats().txns_aborted_conflict, 0);
}

#[test]
fn concurrent_read_write_conflict_aborts_and_retries() {
    let (mut a, mut b, oa, ob) = pair();
    // Both increment concurrently (messages not yet delivered).
    a.execute(Box::new(Incr(oa)));
    b.execute(Box::new(Incr(ob)));
    pump(&mut a, &mut b);
    // Exactly one retry somewhere; final committed value is 2 at both.
    assert_eq!(a.read_int_committed(oa), Some(2));
    assert_eq!(b.read_int_committed(ob), Some(2));
    let retries = a.stats().retries + b.stats().retries;
    assert!(retries >= 1, "one of the increments must have retried");
}

#[test]
fn concurrent_blind_writes_do_not_conflict() {
    let (mut a, mut b, oa, ob) = pair();
    a.execute(Box::new(SetInt(oa, 5)));
    b.execute(Box::new(SetInt(ob, 9)));
    pump(&mut a, &mut b);
    // No rollbacks for blind writes ("concurrency control tests never
    // fail", §5.1.2)...
    assert_eq!(a.stats().txns_aborted_conflict, 0);
    assert_eq!(b.stats().txns_aborted_conflict, 0);
    // ... and both converge on the higher-VT write.
    assert_eq!(a.read_int_committed(oa), b.read_int_committed(ob));
}

#[test]
fn user_abort_rolls_back_without_retry() {
    let (mut a, mut b, oa, _ob) = pair();
    let h = a.execute(Box::new(FailingTxn(oa)));
    pump(&mut a, &mut b);
    assert_eq!(a.txn_outcome(h), Some(TxnOutcome::Aborted));
    assert_eq!(a.read_int_committed(oa), Some(0));
    assert_eq!(a.read_int_current(oa), Some(0), "999 was purged");
    assert_eq!(a.stats().retries, 0);
    assert_eq!(a.stats().txns_aborted_user, 1);
}

#[test]
fn atomicity_multi_object_transfer() {
    struct Xfer(ObjectName, ObjectName, i64);
    impl Transaction for Xfer {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            let a = ctx.read_int(self.0)?;
            if a < self.2 {
                return Err(TxnError::app("insufficient funds"));
            }
            let b = ctx.read_int(self.1)?;
            ctx.write_int(self.0, a - self.2)?;
            ctx.write_int(self.1, b + self.2)
        }
    }
    let mut s1 = Site::new(SiteId(1));
    let mut s2 = Site::new(SiteId(2));
    let acct_a1 = s1.create_int(100);
    let acct_a2 = s2.create_int(100);
    let acct_b1 = s1.create_int(0);
    let acct_b2 = s2.create_int(0);
    wiring::wire_pair(&mut s1, acct_a1, &mut s2, acct_a2);
    wiring::wire_pair(&mut s1, acct_b1, &mut s2, acct_b2);

    s2.execute(Box::new(Xfer(acct_a2, acct_b2, 30)));
    pump(&mut s1, &mut s2);
    assert_eq!(s1.read_int_committed(acct_a1), Some(70));
    assert_eq!(s1.read_int_committed(acct_b1), Some(30));
    // Overdraft aborts atomically.
    let h = s2.execute(Box::new(Xfer(acct_a2, acct_b2, 1000)));
    pump(&mut s1, &mut s2);
    assert_eq!(s2.txn_outcome(h), Some(TxnOutcome::Aborted));
    assert_eq!(s1.read_int_committed(acct_a1), Some(70));
    assert_eq!(s2.read_int_committed(acct_b2), Some(30));
}

#[test]
fn rc_guess_chains_local_commits() {
    // T2 reads T1's uncommitted value at the originator; T2 commits only
    // after T1 does.
    let (mut a, mut b, oa, ob) = pair();
    let h1 = a.execute(Box::new(Incr(oa)));
    let h2 = a.execute(Box::new(Incr(oa))); // reads T1's value
    assert_eq!(a.read_int_current(oa), Some(2));
    // The primary is site 1 itself: "the transaction commits immediately
    // at the originating site" (§5.1.1).
    assert_eq!(a.txn_outcome(h1), Some(TxnOutcome::Committed));
    pump(&mut a, &mut b);
    assert_eq!(a.txn_outcome(h1), Some(TxnOutcome::Committed));
    assert_eq!(a.txn_outcome(h2), Some(TxnOutcome::Committed));
    assert_eq!(b.read_int_committed(ob), Some(2));
}

#[test]
fn cascading_abort_on_rc_dependency() {
    // Site 2 (non-primary) runs T1; before confirmation, T2 at site 2 reads
    // T1's value. A conflicting write from site 1 denies T1 → T2 cascades,
    // both retry, everything converges.
    let (mut a, mut b, oa, ob) = pair();
    // T0 at site 1 creates a reservation (1 read+write).
    a.execute(Box::new(Incr(oa)));
    // Concurrently T1 and T2 at site 2 (T1's guesses will fail).
    b.execute(Box::new(Incr(ob)));
    b.execute(Box::new(Incr(ob)));
    pump(&mut a, &mut b);
    assert_eq!(a.read_int_committed(oa), Some(3));
    assert_eq!(b.read_int_committed(ob), Some(3));
}

#[test]
fn delegate_commit_skips_confirmation_round() {
    // Primary of the object is site 1; originate at site 2 with no RC
    // guesses → the WRITE to site 1 carries the delegation, site 1 commits
    // and broadcasts directly.
    let (mut a, mut b, _oa, ob) = pair();
    let h = b.execute(Box::new(SetInt(ob, 3)));
    let envs: Vec<Envelope> = b.drain_outbox();
    assert_eq!(envs.len(), 1);
    match &envs[0].msg {
        Message::Txn(p) => {
            let d = p.delegate.as_ref().expect("delegation expected");
            assert!(d.notify.contains(&SiteId(2)));
        }
        m => panic!("expected Txn message, got {}", m.tag()),
    }
    // Deliver to site 1: it should emit a COMMIT (not a CONFIRM).
    for e in envs {
        a.handle_message(e);
    }
    let replies = a.drain_outbox();
    assert_eq!(replies.len(), 1);
    assert!(
        matches!(replies[0].msg, Message::Commit { .. }),
        "delegate broadcasts COMMIT directly, got {}",
        replies[0].msg.tag()
    );
    for e in replies {
        b.handle_message(e);
    }
    assert_eq!(b.txn_outcome(h), Some(TxnOutcome::Committed));
}

#[test]
fn delegation_disabled_uses_confirm_round() {
    let cfg = SiteConfig {
        delegate_enabled: false,
        ..SiteConfig::default()
    };
    let mut a = Site::with_config(SiteId(1), cfg);
    let mut b = Site::with_config(SiteId(2), cfg);
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    wiring::wire_pair(&mut a, oa, &mut b, ob);
    let h = b.execute(Box::new(SetInt(ob, 3)));
    let envs = b.drain_outbox();
    match &envs[0].msg {
        Message::Txn(p) => assert!(p.delegate.is_none()),
        m => panic!("unexpected message {}", m.tag()),
    }
    for e in envs {
        a.handle_message(e);
    }
    let replies = a.drain_outbox();
    assert!(
        matches!(replies[0].msg, Message::Confirm { .. }),
        "without delegation the primary confirms, got {}",
        replies[0].msg.tag()
    );
    for e in replies {
        b.handle_message(e);
    }
    // Now b broadcasts the commit.
    let commits = b.drain_outbox();
    assert!(matches!(commits[0].msg, Message::Commit { .. }));
    for e in commits {
        a.handle_message(e);
    }
    assert_eq!(b.txn_outcome(h), Some(TxnOutcome::Committed));
    assert_eq!(a.read_int_committed(oa), Some(3));
}

#[test]
fn three_site_replication_converges() {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let mut c = Site::new(SiteId(3));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    let oc = c.create_int(0);
    wiring::wire_replicas(&mut [(&mut a, oa), (&mut b, ob), (&mut c, oc)]);
    // Paper §3.1 example structure: writes propagate to all, checks at the
    // primary only.
    b.execute(Box::new(SetInt(ob, 2)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);
    for (site, obj) in [(&a, oa), (&b, ob), (&c, oc)] {
        assert_eq!(site.read_int_committed(obj), Some(2));
    }
    c.execute(Box::new(Incr(oc)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);
    for (site, obj) in [(&a, oa), (&b, ob), (&c, oc)] {
        assert_eq!(site.read_int_committed(obj), Some(3));
    }
}

#[test]
fn straggler_write_is_denied_by_reservation() {
    // Site 3's increment is based on a stale value and held back; once the
    // primary has confirmed a later conflicting read, the straggler's check
    // must fail and site 3 must retry on the new state.
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let mut c = Site::new(SiteId(3));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    let oc = c.create_int(0);
    wiring::wire_replicas(&mut [(&mut a, oa), (&mut b, ob), (&mut c, oc)]);

    // c's increment: hold its messages.
    c.execute(Box::new(Incr(oc)));
    let held: Vec<Envelope> = c.drain_outbox();
    // b's increment goes through completely (c also hears about it).
    b.execute(Box::new(Incr(ob)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);
    assert_eq!(a.read_int_committed(oa), Some(1));
    // Now release c's stale messages.
    for e in held {
        match e.to {
            SiteId(1) => a.handle_message(e),
            SiteId(2) => b.handle_message(e),
            _ => unreachable!(),
        }
    }
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);
    assert_eq!(a.read_int_committed(oa), Some(2));
    assert_eq!(b.read_int_committed(ob), Some(2));
    assert_eq!(c.read_int_committed(oc), Some(2));
    assert!(c.stats().retries >= 1, "the stale increment retried");
}

#[test]
fn histories_are_garbage_collected_after_commit() {
    let (mut a, mut b, oa, ob) = pair();
    for i in 0..20 {
        a.execute(Box::new(SetInt(oa, i)));
        pump(&mut a, &mut b);
    }
    // Retention above the peer-message horizon is deliberate (RL/NC
    // evidence against racing stale writes); the history must stay a small
    // lag window, far below the 20 writes performed.
    assert!(
        a.history_len(oa) <= 4,
        "history should be GC'd, len = {}",
        a.history_len(oa)
    );
    assert!(
        b.history_len(ob) <= 4,
        "replica history should be GC'd, len = {}",
        b.history_len(ob)
    );
    assert!(a.stats().gc_discarded > 0);
}

#[test]
fn retries_exhausted_surfaces_abort() {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    struct CountingAborts(ObjectName, Arc<AtomicU32>);
    impl Transaction for CountingAborts {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            let v = ctx.read_int(self.0)?;
            ctx.write_int(self.0, v + 1)
        }
        fn handle_abort(&mut self, _reason: &decaf_core::AbortReason) {
            self.1.fetch_add(1, Ordering::SeqCst);
        }
    }

    let cfg = SiteConfig {
        retry_budget: 0,
        ..SiteConfig::default()
    };
    let mut a = Site::with_config(SiteId(1), cfg);
    let mut b = Site::with_config(SiteId(2), cfg);
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    wiring::wire_pair(&mut a, oa, &mut b, ob);

    let aborts = Arc::new(AtomicU32::new(0));
    a.execute(Box::new(Incr(oa)));
    let h = b.execute(Box::new(CountingAborts(ob, Arc::clone(&aborts))));
    pump(&mut a, &mut b);
    assert_eq!(b.txn_outcome(h), Some(TxnOutcome::Aborted));
    assert_eq!(aborts.load(Ordering::SeqCst), 1, "handle_abort called once");
}

#[test]
fn primary_selector_variants_agree_across_sites() {
    for selector in [
        PrimarySelector::MinNode,
        PrimarySelector::MaxNode,
        PrimarySelector::Rendezvous,
    ] {
        let cfg = SiteConfig {
            selector,
            ..SiteConfig::default()
        };
        let mut a = Site::with_config(SiteId(1), cfg);
        let mut b = Site::with_config(SiteId(2), cfg);
        let oa = a.create_int(0);
        let ob = b.create_int(0);
        wiring::wire_pair(&mut a, oa, &mut b, ob);
        assert_eq!(
            a.primary_of(oa).unwrap(),
            b.primary_of(ob).unwrap(),
            "selector {selector:?} must be a pure function of the graph"
        );
        let h = b.execute(Box::new(SetInt(ob, 1)));
        pump(&mut a, &mut b);
        assert_eq!(b.txn_outcome(h), Some(TxnOutcome::Committed));
        assert_eq!(a.read_int_committed(oa), Some(1));
    }
}

#[test]
fn duplicate_commit_and_abort_messages_are_idempotent() {
    let (mut a, mut b, oa, ob) = pair();
    b.execute(Box::new(SetInt(ob, 5)));
    let writes = b.drain_outbox();
    for e in writes {
        a.handle_message(e);
    }
    let commits = a.drain_outbox();
    // Deliver the commit twice.
    let mut twice: Vec<Envelope> = commits.clone();
    twice.extend(commits);
    for e in twice {
        b.handle_message(e);
    }
    pump(&mut a, &mut b);
    assert_eq!(b.read_int_committed(ob), Some(5));
    assert_eq!(a.read_int_committed(oa), Some(5));
}

#[test]
fn late_write_after_commit_is_applied_as_committed() {
    // Three sites; the WRITE to site 3 is delayed past the COMMIT.
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let mut c = Site::new(SiteId(3));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    let oc = c.create_int(0);
    wiring::wire_replicas(&mut [(&mut a, oa), (&mut b, ob), (&mut c, oc)]);

    b.execute(Box::new(SetInt(ob, 8)));
    let mut to_c = Vec::new();
    let mut rest = Vec::new();
    for e in b.drain_outbox() {
        if e.to == SiteId(3) {
            to_c.push(e);
        } else {
            rest.push(e);
        }
    }
    for e in rest {
        a.handle_message(e);
    }
    // a (primary + delegate) broadcasts COMMIT; deliver c's commit FIRST.
    for e in a.drain_outbox() {
        match e.to {
            SiteId(2) => b.handle_message(e),
            SiteId(3) => c.handle_message(e),
            _ => unreachable!(),
        }
    }
    assert_eq!(c.read_int_current(oc), Some(0), "write still in flight");
    // Now the late WRITE arrives: §3.1 says apply as committed.
    for e in to_c {
        c.handle_message(e);
    }
    assert_eq!(c.read_int_committed(oc), Some(8));
}
