//! Robustness against unexpected protocol input: unknown subjects, unknown
//! objects, duplicate verdicts, and replies from impostor sites must never
//! corrupt state or panic — "faulty applications will not be able to create
//! inconsistent states or crash the entire application" (§2.4), extended to
//! the wire.

use decaf_core::{
    wiring, Envelope, Message, ObjectAddr, ObjectName, Path, PathElem, ReadItem, Site, SubjectKind,
    Transaction, TxnCtx, TxnError, TxnPropagate, UpdateItem, WireOp,
};
use decaf_vt::{SiteId, VirtualTime};

struct Incr(ObjectName);
impl Transaction for Incr {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + 1)
    }
}

fn env(from: u32, to: u32, msg: Message) -> Envelope {
    Envelope {
        from: SiteId(from),
        to: SiteId(to),
        clock: VirtualTime::new(999, SiteId(from)),
        msg,
        span: None,
    }
}

#[test]
fn verdicts_for_unknown_subjects_are_ignored() {
    let mut a = Site::new(SiteId(1));
    let o = a.create_int(5);
    for kind in [SubjectKind::Txn, SubjectKind::Snapshot] {
        a.handle_message(env(
            2,
            1,
            Message::Confirm {
                subject: VirtualTime::new(7, SiteId(2)),
                kind,
            },
        ));
        a.handle_message(env(
            2,
            1,
            Message::Deny {
                subject: VirtualTime::new(8, SiteId(2)),
                kind,
            },
        ));
    }
    a.handle_message(env(
        2,
        1,
        Message::Commit {
            txn: VirtualTime::new(9, SiteId(2)),
        },
    ));
    a.handle_message(env(
        2,
        1,
        Message::Abort {
            txn: VirtualTime::new(10, SiteId(2)),
        },
    ));
    assert_eq!(a.read_int_committed(o), Some(5));
    assert!(a.is_quiescent());
}

#[test]
fn writes_to_unknown_objects_are_dropped_not_wedged() {
    let mut a = Site::new(SiteId(1));
    let o = a.create_int(0);
    let bogus = ObjectName::new(SiteId(9), 404);
    a.handle_message(env(
        2,
        1,
        Message::Txn(TxnPropagate {
            txn: VirtualTime::new(3, SiteId(2)),
            origin: SiteId(2),
            updates: vec![UpdateItem {
                addr: ObjectAddr::Direct(bogus),
                t_r: VirtualTime::new(3, SiteId(2)),
                t_g: VirtualTime::ZERO,
                op: WireOp::SetScalar(decaf_core::ScalarValue::Int(1)),
                needs_check: false,
            }],
            reads: vec![],
            delegate: None,
        }),
    ));
    assert_eq!(a.read_int_committed(o), Some(0));
    // Unknown DIRECT objects are fatal (dropped), not buffered: the site
    // must stay quiescent rather than wait forever.
    assert!(a.is_quiescent(), "{}", a.debug_stuck());
}

#[test]
fn checked_writes_to_unknown_objects_are_denied() {
    let mut a = Site::new(SiteId(1));
    let bogus = ObjectName::new(SiteId(9), 404);
    a.handle_message(env(
        2,
        1,
        Message::Txn(TxnPropagate {
            txn: VirtualTime::new(3, SiteId(2)),
            origin: SiteId(2),
            updates: vec![UpdateItem {
                addr: ObjectAddr::Direct(bogus),
                t_r: VirtualTime::new(3, SiteId(2)),
                t_g: VirtualTime::ZERO,
                op: WireOp::SetScalar(decaf_core::ScalarValue::Int(1)),
                needs_check: true,
            }],
            reads: vec![],
            delegate: None,
        }),
    ));
    let out = a.drain_outbox();
    assert!(
        out.iter().any(|e| matches!(e.msg, Message::Deny { .. })),
        "primary must deny checks it cannot perform: {:?}",
        out.iter().map(|e| e.msg.tag()).collect::<Vec<_>>()
    );
}

#[test]
fn snapshot_confirm_for_unknown_object_is_denied() {
    let mut a = Site::new(SiteId(1));
    let bogus = ObjectName::new(SiteId(9), 404);
    a.handle_message(env(
        2,
        1,
        Message::SnapshotConfirm {
            subject: VirtualTime::new(5, SiteId(2)),
            origin: SiteId(2),
            reads: vec![ReadItem {
                addr: ObjectAddr::Indirect {
                    root: bogus,
                    path: Path(vec![PathElem::Key("x".into())]),
                },
                t_r: VirtualTime::ZERO,
                t_g: VirtualTime::ZERO,
                hi: None,
            }],
        },
    ));
    let out = a.drain_outbox();
    assert!(out.iter().any(|e| matches!(e.msg, Message::Deny { .. })));
}

#[test]
fn duplicate_and_out_of_order_verdicts_do_not_double_commit() {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    wiring::wire_pair(&mut a, oa, &mut b, ob);
    b.execute(Box::new(Incr(ob)));
    let writes = b.drain_outbox();
    for e in writes {
        a.handle_message(e);
    }
    let commits = a.drain_outbox();
    // Deliver the delegate's COMMIT three times, plus a stray duplicate of
    // the original write afterwards.
    for _ in 0..3 {
        for e in commits.clone() {
            b.handle_message(e);
        }
    }
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(a.stats().txns_committed, 0, "a originated nothing");
    assert_eq!(b.stats().txns_committed, 1, "exactly one commit");
    assert_eq!(a.read_int_committed(oa), Some(1));
    assert_eq!(b.read_int_committed(ob), Some(1));
}

#[test]
fn heartbeats_are_inert() {
    let mut a = Site::new(SiteId(1));
    let o = a.create_int(1);
    for _ in 0..20 {
        a.handle_message(env(2, 1, Message::Heartbeat));
    }
    assert_eq!(a.read_int_committed(o), Some(1));
    // The site acks chatty peers eventually but sends nothing else.
    let out = a.drain_outbox();
    assert!(out.iter().all(|e| matches!(e.msg, Message::Heartbeat)));
}
