//! Composite-object tests (paper §3.2): indirect propagation with VT-tagged
//! paths, structural convergence, straggler blocking, and child-value
//! replication.

use decaf_core::{wiring, Blueprint, ObjectName, Site, Transaction, TxnCtx, TxnError, TxnOutcome};
use decaf_vt::SiteId;

struct Push(ObjectName, i64);
impl Transaction for Push {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.list_push(self.0, Blueprint::Int(self.1))?;
        Ok(())
    }
}

struct InsertAt(ObjectName, usize, i64);
impl Transaction for InsertAt {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.list_insert(self.0, self.1, Blueprint::Int(self.2))?;
        Ok(())
    }
}

struct RemoveAt(ObjectName, usize);
impl Transaction for RemoveAt {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.list_remove(self.0, self.1)
    }
}

struct WriteChild(ObjectName, usize, i64);
impl Transaction for WriteChild {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let child = ctx.list_child(self.0, self.1)?;
        ctx.write_int(child, self.2)
    }
}

struct PutKey(ObjectName, &'static str, &'static str);
impl Transaction for PutKey {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.tuple_put(self.0, self.1, Blueprint::str(self.2))?;
        Ok(())
    }
}

fn list_pair() -> (Site, Site, ObjectName, ObjectName) {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let la = a.create_list();
    let lb = b.create_list();
    wiring::wire_pair(&mut a, la, &mut b, lb);
    (a, b, la, lb)
}

fn list_ints(site: &Site, list: ObjectName) -> Vec<i64> {
    site.list_children_current(list)
        .into_iter()
        .filter_map(|c| site.read_int_current(c))
        .collect()
}

#[test]
fn pushed_child_replicates_with_value() {
    let (mut a, mut b, la, lb) = list_pair();
    let h = a.execute(Box::new(Push(la, 7)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(a.txn_outcome(h), Some(TxnOutcome::Committed));
    assert_eq!(list_ints(&a, la), vec![7]);
    assert_eq!(list_ints(&b, lb), vec![7]);
    // The replica's child is a distinct local object, embedded indirect.
    let ca = a.list_children_current(la)[0];
    let cb = b.list_children_current(lb)[0];
    assert_ne!(ca, cb, "each site instantiates its own child object");
}

#[test]
fn child_value_update_propagates_by_path() {
    let (mut a, mut b, la, lb) = list_pair();
    a.execute(Box::new(Push(la, 1)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    // Update the child at the NON-originating site: the path must resolve
    // back at a.
    b.execute(Box::new(WriteChild(lb, 0, 99)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(list_ints(&a, la), vec![99]);
    assert_eq!(list_ints(&b, lb), vec![99]);
}

#[test]
fn concurrent_blind_appends_converge() {
    let (mut a, mut b, la, lb) = list_pair();
    a.execute(Box::new(Push(la, 1)));
    b.execute(Box::new(Push(lb, 2)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    let va = list_ints(&a, la);
    let vb = list_ints(&b, lb);
    assert_eq!(va, vb, "replicas converge");
    assert_eq!(va.len(), 2);
    assert_eq!(
        a.stats().txns_aborted_conflict + b.stats().txns_aborted_conflict,
        0,
        "blind appends never conflict"
    );
}

#[test]
fn read_dependent_inserts_conflict_and_serialize() {
    let (mut a, mut b, la, lb) = list_pair();
    a.execute(Box::new(InsertAt(la, 0, 1)));
    b.execute(Box::new(InsertAt(lb, 0, 2)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(list_ints(&a, la), list_ints(&b, lb));
    assert_eq!(list_ints(&a, la).len(), 2);
    assert!(
        a.stats().retries + b.stats().retries >= 1,
        "index-dependent inserts are read-dependent: one retried"
    );
}

#[test]
fn remove_propagates_by_tag_not_index() {
    let (mut a, mut b, la, lb) = list_pair();
    for v in [10, 20, 30] {
        a.execute(Box::new(Push(la, v)));
        wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    }
    a.execute(Box::new(RemoveAt(la, 1)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(list_ints(&a, la), vec![10, 30]);
    assert_eq!(list_ints(&b, lb), vec![10, 30]);
}

#[test]
fn paper_example_delete_below_does_not_conflict_with_child_write() {
    // §3.2.1: a transaction may modify A[1][..] without having seen that an
    // earlier transaction deleted A[0]; tags keep the path stable and this
    // is NOT a concurrency-control conflict.
    let (mut a, mut b, la, lb) = list_pair();
    for v in [100, 200] {
        a.execute(Box::new(Push(la, v)));
        wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    }
    // Concurrently: a removes index 0 (the 100), b writes into what b still
    // sees as index 1 (the 200).
    a.execute(Box::new(RemoveAt(la, 0)));
    b.execute(Box::new(WriteChild(lb, 1, 222)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(list_ints(&a, la), vec![222]);
    assert_eq!(list_ints(&b, lb), vec![222]);
}

#[test]
fn straggling_path_update_blocks_until_structure_arrives() {
    // b learns about a child-value update before the structural insert that
    // created the child: the update must buffer, then apply (§3.2.1).
    let (mut a, mut b, la, lb) = list_pair();
    // Insert at a; hold the structural message to b.
    a.execute(Box::new(Push(la, 5)));
    let structural: Vec<_> = a.drain_outbox();
    // Child-value update at a (reads its own committed? the push is still
    // uncommitted — the value write reads the pending child: fine).
    a.execute(Box::new(WriteChild(la, 0, 50)));
    let value_update: Vec<_> = a.drain_outbox();
    // Deliver the value update FIRST.
    for e in value_update {
        if e.to == SiteId(2) {
            b.handle_message(e);
        }
    }
    assert_eq!(
        list_ints(&b, lb),
        Vec::<i64>::new(),
        "buffered, not applied"
    );
    // Now the structural insert arrives; the buffered update applies.
    for e in structural {
        if e.to == SiteId(2) {
            b.handle_message(e);
        }
    }
    assert_eq!(list_ints(&b, lb), vec![50]);
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(list_ints(&b, lb), vec![50]);
}

#[test]
fn nested_composites_replicate() {
    struct PushTuple(ObjectName);
    impl Transaction for PushTuple {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            ctx.list_push(
                self.0,
                Blueprint::Tuple(vec![
                    ("author".into(), Blueprint::str("alice")),
                    ("score".into(), Blueprint::Int(3)),
                ]),
            )?;
            Ok(())
        }
    }
    struct BumpScore(ObjectName);
    impl Transaction for BumpScore {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            let tuple = ctx.list_child(self.0, 0)?;
            let score = ctx
                .tuple_get(tuple, "score")?
                .ok_or_else(|| TxnError::app("no score"))?;
            let v = ctx.read_int(score)?;
            ctx.write_int(score, v + 1)
        }
    }
    let (mut a, mut b, la, lb) = list_pair();
    a.execute(Box::new(PushTuple(la)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    // Bump the nested score from the replica side.
    b.execute(Box::new(BumpScore(lb)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    for (site, list) in [(&a, la), (&b, lb)] {
        let tuple = site.list_children_current(list)[0];
        let children = site.tuple_children_current(tuple);
        let score = children
            .iter()
            .find(|(k, _)| k == "score")
            .map(|(_, c)| *c)
            .unwrap();
        assert_eq!(site.read_int_committed(score), Some(4));
        let author = children
            .iter()
            .find(|(k, _)| k == "author")
            .map(|(_, c)| *c)
            .unwrap();
        assert_eq!(site.read_str_committed(author).as_deref(), Some("alice"));
    }
}

#[test]
fn tuple_put_and_remove_replicate() {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let ta = a.create_tuple();
    let tb = b.create_tuple();
    wiring::wire_pair(&mut a, ta, &mut b, tb);

    a.execute(Box::new(PutKey(ta, "name", "bob")));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    let name_b = b
        .tuple_children_current(tb)
        .iter()
        .find(|(k, _)| k == "name")
        .map(|(_, c)| *c)
        .unwrap();
    assert_eq!(b.read_str_committed(name_b).as_deref(), Some("bob"));

    struct RemoveKey(ObjectName, &'static str);
    impl Transaction for RemoveKey {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            ctx.tuple_remove(self.0, self.1)
        }
    }
    b.execute(Box::new(RemoveKey(tb, "name")));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert!(a.tuple_children_current(ta).is_empty());
    assert!(b.tuple_children_current(tb).is_empty());
}

#[test]
fn abort_rolls_back_structural_change_and_children() {
    let (mut a, mut b, la, _lb) = list_pair();
    struct PushThenFail(ObjectName);
    impl Transaction for PushThenFail {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            ctx.list_push(self.0, Blueprint::Int(13))?;
            Err(TxnError::app("changed my mind"))
        }
    }
    let h = a.execute(Box::new(PushThenFail(la)));
    assert_eq!(a.txn_outcome(h), Some(TxnOutcome::Aborted));
    assert!(a.list_children_current(la).is_empty());
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert!(b.list_children_current(_lb).is_empty());
}

#[test]
fn three_site_composite_convergence_under_concurrency() {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let mut c = Site::new(SiteId(3));
    let la = a.create_list();
    let lb = b.create_list();
    let lc = c.create_list();
    wiring::wire_replicas(&mut [(&mut a, la), (&mut b, lb), (&mut c, lc)]);

    a.execute(Box::new(Push(la, 1)));
    b.execute(Box::new(Push(lb, 2)));
    c.execute(Box::new(Push(lc, 3)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);
    let va = list_ints(&a, la);
    assert_eq!(va.len(), 3);
    assert_eq!(va, list_ints(&b, lb));
    assert_eq!(va, list_ints(&c, lc));
}
