//! Property-based convergence for composite objects: random structural and
//! child-value operations from multiple sites, delivered in random (but
//! per-link FIFO) order, must leave all replicas with identical committed
//! lists (§3.2's indirect propagation under stress).

use proptest::prelude::*;

use decaf_core::{wiring, Blueprint, Envelope, ObjectName, Site, Transaction, TxnCtx, TxnError};
use decaf_vt::SiteId;

struct PushVal(ObjectName, i64);
impl Transaction for PushVal {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.list_push(self.0, Blueprint::Int(self.1))?;
        Ok(())
    }
}

struct InsertAt(ObjectName, usize, i64);
impl Transaction for InsertAt {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let len = ctx.list_len(self.0)?;
        ctx.list_insert(self.0, self.1 % (len + 1), Blueprint::Int(self.2))?;
        Ok(())
    }
}

struct RemoveAt(ObjectName, usize);
impl Transaction for RemoveAt {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let len = ctx.list_len(self.0)?;
        if len == 0 {
            return Err(TxnError::app("empty"));
        }
        ctx.list_remove(self.0, self.1 % len)
    }
}

struct WriteChild(ObjectName, usize, i64);
impl Transaction for WriteChild {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let len = ctx.list_len(self.0)?;
        if len == 0 {
            return Err(TxnError::app("empty"));
        }
        let child = ctx.list_child(self.0, self.1 % len)?;
        ctx.write_int(child, self.2)
    }
}

#[derive(Debug, Clone)]
enum Op {
    Push { who: usize, v: i64 },
    Insert { who: usize, at: usize, v: i64 },
    Remove { who: usize, at: usize },
    Write { who: usize, at: usize, v: i64 },
    Deliver { nth: usize },
}

fn arb_ops(sites: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..sites, 0i64..100).prop_map(|(who, v)| Op::Push { who, v }),
            (0..sites, 0usize..8, 0i64..100).prop_map(|(who, at, v)| Op::Insert { who, at, v }),
            (0..sites, 0usize..8).prop_map(|(who, at)| Op::Remove { who, at }),
            (0..sites, 0usize..8, 0i64..100).prop_map(|(who, at, v)| Op::Write { who, at, v }),
            (0usize..64).prop_map(|nth| Op::Deliver { nth }),
        ],
        1..50,
    )
}

fn committed_ints(site: &Site, list: ObjectName) -> Vec<Option<i64>> {
    site.list_children_current(list)
        .into_iter()
        .map(|c| site.read_int_current(c))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn composite_replicas_converge(ops in arb_ops(3)) {
        let n = 3;
        let mut sites: Vec<Site> = (0..n).map(|i| Site::new(SiteId(i as u32 + 1))).collect();
        let lists: Vec<ObjectName> = sites.iter_mut().map(Site::create_list).collect();
        {
            let mut parts: Vec<(&mut Site, ObjectName)> = sites
                .iter_mut()
                .zip(lists.iter().copied())
                .collect();
            wiring::wire_replicas(&mut parts);
        }
        let mut queues: std::collections::BTreeMap<(SiteId, SiteId), std::collections::VecDeque<Envelope>> =
            Default::default();
        macro_rules! drain {
            () => {
                for s in sites.iter_mut() {
                    for e in s.drain_outbox() {
                        queues.entry((e.from, e.to)).or_default().push_back(e);
                    }
                }
            };
        }
        for op in &ops {
            match op {
                Op::Push { who, v } => {
                    sites[*who].execute(Box::new(PushVal(lists[*who], *v)));
                }
                Op::Insert { who, at, v } => {
                    sites[*who].execute(Box::new(InsertAt(lists[*who], *at, *v)));
                }
                Op::Remove { who, at } => {
                    sites[*who].execute(Box::new(RemoveAt(lists[*who], *at)));
                }
                Op::Write { who, at, v } => {
                    sites[*who].execute(Box::new(WriteChild(lists[*who], *at, *v)));
                }
                Op::Deliver { nth } => {
                    let keys: Vec<(SiteId, SiteId)> = queues
                        .keys()
                        .copied()
                        .filter(|k| !queues[k].is_empty())
                        .collect();
                    if keys.is_empty() {
                        continue;
                    }
                    let key = keys[nth % keys.len()];
                    if let Some(env) = queues.get_mut(&key).and_then(|q| q.pop_front()) {
                        let idx = (env.to.0 - 1) as usize;
                        sites[idx].handle_message(env);
                    }
                }
            }
            drain!();
        }
        // Flush to quiescence, FIFO per link.
        loop {
            drain!();
            let mut any = false;
            let keys: Vec<(SiteId, SiteId)> = queues.keys().copied().collect();
            for key in keys {
                while let Some(env) = queues.get_mut(&key).and_then(|q| q.pop_front()) {
                    any = true;
                    let idx = (env.to.0 - 1) as usize;
                    sites[idx].handle_message(env);
                    drain!();
                }
            }
            if !any {
                break;
            }
        }
        // Every site is internally quiescent (no wedged buffered stragglers).
        for s in &sites {
            prop_assert!(
                s.is_quiescent(),
                "site {} not quiescent: {}",
                s.id(),
                s.debug_stuck()
            );
        }
        // Replicas hold identical list contents.
        let reference = committed_ints(&sites[0], lists[0]);
        for (i, s) in sites.iter().enumerate().skip(1) {
            let got = committed_ints(s, lists[i]);
            prop_assert_eq!(
                &got, &reference,
                "replica {} diverged", i + 1
            );
        }
    }
}
