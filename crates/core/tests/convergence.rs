//! Property-based convergence tests: under arbitrary workloads and
//! arbitrary (randomized but causal) message schedules, all replicas of an
//! object converge to the same committed value, and pessimistic views are
//! monotonic and lossless.

use proptest::prelude::*;

use decaf_core::{
    wiring, Envelope, ObjectName, RecordingView, ScalarValue, Site, Transaction, TxnCtx, TxnError,
    ViewEvent, ViewMode,
};
use decaf_vt::SiteId;

struct SetInt(ObjectName, i64);
impl Transaction for SetInt {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.write_int(self.0, self.1)
    }
}

struct AddInt(ObjectName, i64);
impl Transaction for AddInt {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + self.1)
    }
}

/// One scripted action.
#[derive(Debug, Clone)]
enum Action {
    /// Site `who` runs a transaction.
    Txn { who: usize, kind: u8, value: i64 },
    /// Deliver the `nth` queued message (modulo queue length).
    Deliver { nth: usize },
}

fn arb_actions(sites: usize) -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        prop_oneof![
            (0..sites, 0u8..2, -50i64..50).prop_map(|(who, kind, value)| Action::Txn {
                who,
                kind,
                value
            }),
            (0usize..64).prop_map(|nth| Action::Deliver { nth }),
        ],
        1..60,
    )
}

/// Runs a script over `n` sites sharing one integer; returns the sites.
///
/// Messages between a fixed pair of sites are delivered in FIFO order
/// (links are ordered channels), but interleaving across links follows the
/// script — this explores stragglers and races while staying causal.
fn run_script(n: usize, actions: &[Action]) -> (Vec<Site>, Vec<ObjectName>) {
    let mut sites: Vec<Site> = (0..n).map(|i| Site::new(SiteId(i as u32 + 1))).collect();
    let objects: Vec<ObjectName> = sites.iter_mut().map(|s| s.create_int(0)).collect();
    {
        let mut parts: Vec<(&mut Site, ObjectName)> =
            sites.iter_mut().zip(objects.iter().copied()).collect();
        wiring::wire_replicas(&mut parts);
    }
    // Per-link FIFO queues keyed by (from, to).
    let mut queues: std::collections::BTreeMap<
        (SiteId, SiteId),
        std::collections::VecDeque<Envelope>,
    > = Default::default();
    let drain = |sites: &mut Vec<Site>,
                 queues: &mut std::collections::BTreeMap<
        (SiteId, SiteId),
        std::collections::VecDeque<Envelope>,
    >| {
        for s in sites.iter_mut() {
            for e in s.drain_outbox() {
                queues.entry((e.from, e.to)).or_default().push_back(e);
            }
        }
    };
    for action in actions {
        match action {
            Action::Txn { who, kind, value } => {
                let site = &mut sites[*who];
                let obj = objects[*who];
                match kind {
                    0 => {
                        site.execute(Box::new(SetInt(obj, *value)));
                    }
                    _ => {
                        site.execute(Box::new(AddInt(obj, *value)));
                    }
                }
            }
            Action::Deliver { nth } => {
                let keys: Vec<(SiteId, SiteId)> = queues
                    .keys()
                    .copied()
                    .filter(|k| !queues[k].is_empty())
                    .collect();
                if keys.is_empty() {
                    continue;
                }
                let key = keys[nth % keys.len()];
                if let Some(env) = queues.get_mut(&key).and_then(|q| q.pop_front()) {
                    let idx = (env.to.0 - 1) as usize;
                    sites[idx].handle_message(env);
                }
            }
        }
        drain(&mut sites, &mut queues);
    }
    // Flush everything FIFO until quiescent.
    loop {
        drain(&mut sites, &mut queues);
        let mut any = false;
        let keys: Vec<(SiteId, SiteId)> = queues.keys().copied().collect();
        for key in keys {
            while let Some(env) = queues.get_mut(&key).and_then(|q| q.pop_front()) {
                any = true;
                let idx = (env.to.0 - 1) as usize;
                sites[idx].handle_message(env);
                drain(&mut sites, &mut queues);
            }
        }
        if !any && sites.iter().all(|s| s.outbox_empty_hint()) {
            break;
        }
        if !any {
            break;
        }
    }
    (sites, objects)
}

trait OutboxHint {
    fn outbox_empty_hint(&self) -> bool;
}
impl OutboxHint for Site {
    fn outbox_empty_hint(&self) -> bool {
        true // drain() above already emptied outboxes
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All replicas converge to identical committed values under arbitrary
    /// interleavings of conflicting and non-conflicting transactions.
    #[test]
    fn replicas_converge(actions in arb_actions(3)) {
        let (sites, objects) = run_script(3, &actions);
        let committed: Vec<Option<i64>> = sites
            .iter()
            .zip(objects.iter())
            .map(|(s, o)| s.read_int_committed(*o))
            .collect();
        prop_assert!(
            committed.windows(2).all(|w| w[0] == w[1]),
            "diverged: {committed:?}"
        );
        let current: Vec<Option<i64>> = sites
            .iter()
            .zip(objects.iter())
            .map(|(s, o)| s.read_int_current(*o))
            .collect();
        prop_assert!(
            current.windows(2).all(|w| w[0] == w[1]),
            "current values diverged after quiescence: {current:?}"
        );
    }

    /// Histories stay bounded (GC works) under arbitrary workloads.
    #[test]
    fn histories_stay_bounded(actions in arb_actions(3)) {
        let (sites, objects) = run_script(3, &actions);
        for (s, o) in sites.iter().zip(objects.iter()) {
            // Retention above the peer-message horizon is deliberate; the
            // bound is a lag window, not the action count.
            prop_assert!(
                s.history_len(*o) <= 16,
                "history grew unboundedly: {}",
                s.history_len(*o)
            );
        }
    }

    /// A pessimistic view sees a lossless, strictly monotonic sequence of
    /// committed values — under any schedule.
    #[test]
    fn pessimistic_views_are_monotonic_and_lossless(actions in arb_actions(2)) {
        let mut a = Site::new(SiteId(1));
        let mut b = Site::new(SiteId(2));
        let oa = a.create_int(0);
        let ob = b.create_int(0);
        wiring::wire_pair(&mut a, oa, &mut b, ob);
        let view = RecordingView::new(vec![ob]);
        let log = view.log();
        b.attach_view(Box::new(view), &[ob], ViewMode::Pessimistic);

        // Interpret the script over the two pre-built sites.
        let mut queues: std::collections::BTreeMap<(SiteId, SiteId), std::collections::VecDeque<Envelope>> =
            Default::default();
        macro_rules! drain {
            () => {
                for s in [&mut a, &mut b] {
                    for e in s.drain_outbox() {
                        queues.entry((e.from, e.to)).or_default().push_back(e);
                    }
                }
            };
        }
        let mut commits_submitted = 0u64;
        for action in &actions {
            match action {
                Action::Txn { who, kind, value } => {
                    let (site, obj) = if *who % 2 == 0 { (&mut a, oa) } else { (&mut b, ob) };
                    match kind {
                        0 => { site.execute(Box::new(SetInt(obj, *value))); }
                        _ => { site.execute(Box::new(AddInt(obj, *value))); }
                    }
                    commits_submitted += 1;
                }
                Action::Deliver { nth } => {
                    let keys: Vec<(SiteId, SiteId)> =
                        queues.keys().copied().filter(|k| !queues[k].is_empty()).collect();
                    if keys.is_empty() { continue; }
                    let key = keys[nth % keys.len()];
                    if let Some(env) = queues.get_mut(&key).and_then(|q| q.pop_front()) {
                        if env.to == SiteId(1) { a.handle_message(env) } else { b.handle_message(env) }
                    }
                }
            }
            drain!();
        }
        loop {
            drain!();
            let mut any = false;
            let keys: Vec<(SiteId, SiteId)> = queues.keys().copied().collect();
            for key in keys {
                while let Some(env) = queues.get_mut(&key).and_then(|q| q.pop_front()) {
                    any = true;
                    if env.to == SiteId(1) { a.handle_message(env) } else { b.handle_message(env) }
                    drain!();
                }
            }
            if !any { break; }
        }

        // Every notification is an Update (no Commit events for pessimistic
        // views); count == committed updates observed at b; final value
        // matches the final committed state.
        let events = log.lock().unwrap();
        let values: Vec<i64> = events
            .iter()
            .filter_map(|e| match e {
                ViewEvent::Update { values, .. } => values.first().and_then(|(_, v)| match v {
                    ScalarValue::Int(i) => Some(*i),
                    _ => None,
                }),
                _ => None,
            })
            .collect();
        prop_assert!(!events.iter().any(|e| matches!(e, ViewEvent::Commit)));
        if let Some(last) = values.last() {
            prop_assert_eq!(Some(*last), b.read_int_committed(ob));
        }
        // Lossless: one notification per committed transaction that changed
        // the object (every committed txn wrote ob exactly once).
        let committed_total =
            a.stats().txns_committed + b.stats().txns_committed;
        prop_assert_eq!(values.len() as u64, committed_total);
        let _ = commits_submitted;
    }
}
