//! Persistence and recovery tests (paper §5.3): checkpoint a quiescent
//! site, serialize it, restore it, and resume collaborating — including the
//! crash-and-rejoin flow of §3.4.

use decaf_core::{
    wiring, Blueprint, Checkpoint, CheckpointError, EngineEvent, ObjectName, Site, Transaction,
    TxnCtx, TxnError,
};
use decaf_vt::SiteId;

struct Incr(ObjectName);
impl Transaction for Incr {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + 1)
    }
}

struct Push(ObjectName, i64);
impl Transaction for Push {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.list_push(self.0, Blueprint::Int(self.1))?;
        Ok(())
    }
}

#[test]
fn checkpoint_roundtrips_through_json() {
    let mut site = Site::new(SiteId(1));
    let counter = site.create_int(0);
    let list = site.create_list();
    for i in 0..3 {
        site.execute(Box::new(Incr(counter)));
        site.execute(Box::new(Push(list, i * 10)));
    }
    let cp = site.checkpoint().expect("quiescent site");
    let json = serde_json::to_string(&cp).expect("serializable");
    let back: Checkpoint = serde_json::from_str(&json).expect("deserializable");
    let restored = Site::restore(back);

    assert_eq!(restored.read_int_committed(counter), Some(3));
    let values: Vec<i64> = restored
        .list_children_current(list)
        .into_iter()
        .filter_map(|c| restored.read_int_committed(c))
        .collect();
    assert_eq!(values, vec![0, 10, 20]);
}

#[test]
fn checkpoint_requires_quiescence() {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    wiring::wire_pair(&mut a, oa, &mut b, ob);
    // Originate at the non-primary site: confirmation outstanding.
    b.execute(Box::new(Incr(ob)));
    assert_eq!(b.checkpoint().unwrap_err(), CheckpointError::NotQuiescent);
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert!(b.checkpoint().is_ok());
}

#[test]
fn restored_site_resumes_collaboration() {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    wiring::wire_pair(&mut a, oa, &mut b, ob);
    for _ in 0..4 {
        a.execute(Box::new(Incr(oa)));
        wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    }

    // Site b restarts from its checkpoint, keeping its replica state,
    // graphs, and clock.
    let cp = b.checkpoint().expect("quiescent");
    drop(b);
    let mut b = Site::restore(cp);
    assert_eq!(b.read_int_committed(ob), Some(4));
    assert_eq!(b.replication_graph(ob).unwrap().len(), 2);

    // Both directions still work.
    b.execute(Box::new(Incr(ob)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(a.read_int_committed(oa), Some(5));
    a.execute(Box::new(Incr(oa)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(b.read_int_committed(ob), Some(6));
}

#[test]
fn crash_repair_then_restored_site_rejoins_as_new_member() {
    // The §3.4 lifecycle: site 3 crashes, survivors repair it away; later
    // the user restarts from a checkpoint and, per the paper, "rejoins the
    // collaboration by going through a join protocol as a new member".
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let mut c = Site::new(SiteId(3));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    let oc = c.create_int(0);
    wiring::wire_replicas(&mut [(&mut a, oa), (&mut b, ob), (&mut c, oc)]);
    a.execute(Box::new(Incr(oa)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);

    // Survivors also need an association to re-invite through.
    let assoc = a.create_association();
    let rel = a.create_relation(assoc, "doc", oa).unwrap();
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);

    // c crashes (checkpoint taken beforehand); survivors repair.
    let cp = c.checkpoint().expect("quiescent");
    drop(c);
    a.notify_site_failed(SiteId(3));
    b.notify_site_failed(SiteId(3));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(a.replication_graph(oa).unwrap().len(), 2);

    // Work continues without c.
    b.execute(Box::new(Incr(ob)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(a.read_int_committed(oa), Some(2));

    // c restarts from its checkpoint: private state intact but stale.
    let mut c = Site::restore(cp);
    assert_eq!(c.read_int_committed(oc), Some(1), "stale pre-crash state");

    // Rejoin as a new member with a fresh object, per §3.4.
    let invitation = a.make_invitation(assoc, rel).unwrap();
    let oc2 = c.create_int(0);
    c.join(invitation, oc2).unwrap();
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);
    let joined = c
        .drain_events()
        .iter()
        .any(|e| matches!(e, EngineEvent::JoinCompleted { ok: true, .. }));
    assert!(joined, "rejoin must complete");
    assert_eq!(c.read_int_committed(oc2), Some(2), "caught up on rejoin");

    c.execute(Box::new(Incr(oc2)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);
    assert_eq!(a.read_int_committed(oa), Some(3));
    assert_eq!(b.read_int_committed(ob), Some(3));
}

#[test]
fn checkpoint_preserves_name_allocation() {
    // Objects created after a restore must not collide with pre-crash
    // names.
    let mut site = Site::new(SiteId(1));
    let o1 = site.create_int(1);
    let cp = site.checkpoint().unwrap();
    let mut restored = Site::restore(cp);
    let o2 = restored.create_int(2);
    assert_ne!(o1, o2, "fresh names after restore");
    assert_eq!(restored.read_int_committed(o1), Some(1));
    assert_eq!(restored.read_int_committed(o2), Some(2));
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        SetInt(i64),
        Push(i64),
        RemoveFirst,
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec(
            prop_oneof![
                (-100i64..100).prop_map(Op::SetInt),
                (-100i64..100).prop_map(Op::Push),
                Just(Op::RemoveFirst),
            ],
            0..30,
        )
    }

    struct DoSet(decaf_core::ObjectName, i64);
    impl Transaction for DoSet {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            ctx.write_int(self.0, self.1)
        }
    }
    struct DoPush(decaf_core::ObjectName, i64);
    impl Transaction for DoPush {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            ctx.list_push(self.0, Blueprint::Int(self.1))?;
            Ok(())
        }
    }
    struct DoRemove(decaf_core::ObjectName);
    impl Transaction for DoRemove {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            if ctx.list_len(self.0)? == 0 {
                return Err(TxnError::app("empty"));
            }
            ctx.list_remove(self.0, 0)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Any reachable quiescent state survives a JSON checkpoint
        /// round trip bit-for-bit observably.
        #[test]
        fn checkpoint_roundtrip_preserves_observable_state(ops in arb_ops()) {
            let mut site = Site::new(SiteId(1));
            let counter = site.create_int(0);
            let list = site.create_list();
            for op in &ops {
                match op {
                    Op::SetInt(v) => {
                        site.execute(Box::new(DoSet(counter, *v)));
                    }
                    Op::Push(v) => {
                        site.execute(Box::new(DoPush(list, *v)));
                    }
                    Op::RemoveFirst => {
                        site.execute(Box::new(DoRemove(list)));
                    }
                }
            }
            let before_counter = site.read_int_committed(counter);
            let before_list: Vec<Option<i64>> = site
                .list_children_current(list)
                .into_iter()
                .map(|c| site.read_int_committed(c))
                .collect();

            let cp = site.checkpoint().expect("single site is quiescent");
            let json = serde_json::to_string(&cp).expect("serialize");
            let back: decaf_core::Checkpoint =
                serde_json::from_str(&json).expect("deserialize");
            let restored = Site::restore(back);

            prop_assert_eq!(restored.read_int_committed(counter), before_counter);
            let after_list: Vec<Option<i64>> = restored
                .list_children_current(list)
                .into_iter()
                .map(|c| restored.read_int_committed(c))
                .collect();
            prop_assert_eq!(after_list, before_list);
        }
    }
}
