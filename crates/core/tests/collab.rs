//! Dynamic collaboration establishment tests (paper §2.6, §3.3): relations,
//! invitations, joins (including value adoption and association membership
//! updates), leaves, and authorization monitors.

use decaf_core::{
    wiring, EngineEvent, ObjectName, RecordingView, ScalarValue, Site, Transaction, TxnCtx,
    TxnError, ViewEvent, ViewMode,
};
use decaf_vt::SiteId;

struct SetInt(ObjectName, i64);
impl Transaction for SetInt {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.write_int(self.0, self.1)
    }
}

struct Incr(ObjectName);
impl Transaction for Incr {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + 1)
    }
}

fn join_completed(site: &mut Site) -> Option<bool> {
    site.drain_events().into_iter().find_map(|e| match e {
        EngineEvent::JoinCompleted { ok, .. } => Some(ok),
        _ => None,
    })
}

/// Full §2.6 flow: A creates an association + relation + invitation;
/// B imports the invitation and joins.
#[test]
fn end_to_end_join_establishes_replication() {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));

    let shared_a = a.create_int(41);
    let assoc = a.create_association();
    let rel = a
        .create_relation(assoc, "budget sharing", shared_a)
        .unwrap();
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    let invitation = a.make_invitation(assoc, rel).unwrap();

    // B instantiates its own object and joins.
    let shared_b = b.create_int(0);
    b.join(invitation, shared_b).unwrap();
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(join_completed(&mut b), Some(true));

    // B adopted A's value...
    assert_eq!(b.read_int_committed(shared_b), Some(41));
    // ... and the graphs now span both sites.
    assert_eq!(a.replication_graph(shared_a).unwrap().len(), 2);
    assert_eq!(b.replication_graph(shared_b).unwrap().len(), 2);

    // Updates flow in both directions.
    b.execute(Box::new(Incr(shared_b)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(a.read_int_committed(shared_a), Some(42));
    a.execute(Box::new(Incr(shared_a)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(b.read_int_committed(shared_b), Some(43));
}

#[test]
fn join_updates_association_membership() {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let shared_a = a.create_int(0);
    let assoc = a.create_association();
    let rel = a.create_relation(assoc, "session", shared_a).unwrap();
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);

    // "Changes in membership in associations are signaled as update
    // notifications in exactly the same way as changes in values" (§2.6).
    let view = RecordingView::new(vec![]);
    let log = view.log();
    a.attach_view(Box::new(view), &[assoc], ViewMode::Pessimistic);

    let invitation = a.make_invitation(assoc, rel).unwrap();
    let shared_b = b.create_int(0);
    b.join(invitation, shared_b).unwrap();
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);

    // The association at A now lists B's object as a member.
    struct ReadMembers(ObjectName, std::sync::Arc<std::sync::Mutex<usize>>);
    impl Transaction for ReadMembers {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            let rels = ctx.read_assoc(self.0)?;
            *self.1.lock().unwrap() = rels.first().map(|r| r.members.len()).unwrap_or(0);
            Ok(())
        }
    }
    let count = std::sync::Arc::new(std::sync::Mutex::new(0));
    a.execute(Box::new(ReadMembers(assoc, std::sync::Arc::clone(&count))));
    assert_eq!(*count.lock().unwrap(), 2, "both members listed");
    assert!(
        log.lock()
            .unwrap()
            .iter()
            .any(|e| matches!(e, ViewEvent::Update { .. })),
        "membership change notified the association's view"
    );
}

#[test]
fn third_party_joins_existing_collaboration() {
    // A and B collaborate; C joins through A's invitation → three-way graph.
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let mut c = Site::new(SiteId(3));

    let oa = a.create_int(5);
    let assoc = a.create_association();
    let rel = a.create_relation(assoc, "doc", oa).unwrap();
    let invitation = a.make_invitation(assoc, rel).unwrap();

    let ob = b.create_int(0);
    b.join(invitation, ob).unwrap();
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);
    assert_eq!(join_completed(&mut b), Some(true));

    let oc = c.create_int(0);
    c.join(invitation, oc).unwrap();
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);
    assert_eq!(join_completed(&mut c), Some(true));

    assert_eq!(a.replication_graph(oa).unwrap().len(), 3);
    assert_eq!(b.replication_graph(ob).unwrap().len(), 3);
    assert_eq!(c.replication_graph(oc).unwrap().len(), 3);
    assert_eq!(c.read_int_committed(oc), Some(5), "C adopted the value");

    c.execute(Box::new(SetInt(oc, 100)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);
    for (s, o) in [(&a, oa), (&b, ob), (&c, oc)] {
        assert_eq!(s.read_int_committed(o), Some(100));
    }
}

#[test]
fn join_adopts_composite_subtree() {
    use decaf_core::Blueprint;
    struct Push(ObjectName, i64);
    impl Transaction for Push {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            ctx.list_push(self.0, Blueprint::Int(self.1))?;
            Ok(())
        }
    }
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let list_a = a.create_list();
    for v in [1, 2, 3] {
        a.execute(Box::new(Push(list_a, v)));
    }
    let assoc = a.create_association();
    let rel = a.create_relation(assoc, "board", list_a).unwrap();
    let invitation = a.make_invitation(assoc, rel).unwrap();

    let list_b = b.create_list();
    b.join(invitation, list_b).unwrap();
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(join_completed(&mut b), Some(true));
    let values: Vec<i64> = b
        .list_children_current(list_b)
        .into_iter()
        .filter_map(|c| b.read_int_committed(c))
        .collect();
    assert_eq!(values, vec![1, 2, 3]);

    // Indirect propagation works across the adopted subtree.
    struct WriteChild(ObjectName, usize, i64);
    impl Transaction for WriteChild {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            let child = ctx.list_child(self.0, self.1)?;
            ctx.write_int(child, self.2)
        }
    }
    b.execute(Box::new(WriteChild(list_b, 1, 22)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    let values_a: Vec<i64> = a
        .list_children_current(list_a)
        .into_iter()
        .filter_map(|c| a.read_int_committed(c))
        .collect();
    assert_eq!(values_a, vec![1, 22, 3]);
}

#[test]
fn authorizer_can_refuse_join() {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let oa = a.create_int(0);
    let assoc = a.create_association();
    let rel = a.create_relation(assoc, "private", oa).unwrap();
    let invitation = a.make_invitation(assoc, rel).unwrap();
    // Only site 3 may join.
    a.set_authorizer(|_inv, joiner| joiner.site == SiteId(3));

    let ob = b.create_int(0);
    b.join(invitation, ob).unwrap();
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(join_completed(&mut b), Some(false), "join refused");
    assert_eq!(a.replication_graph(oa).unwrap().len(), 1);
    assert_eq!(b.replication_graph(ob).unwrap().len(), 1);
}

#[test]
fn leave_shrinks_remaining_graphs() {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let mut c = Site::new(SiteId(3));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    let oc = c.create_int(0);
    wiring::wire_replicas(&mut [(&mut a, oa), (&mut b, ob), (&mut c, oc)]);

    c.leave(oc).unwrap();
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);
    assert_eq!(a.replication_graph(oa).unwrap().len(), 2);
    assert_eq!(b.replication_graph(ob).unwrap().len(), 2);
    assert_eq!(c.replication_graph(oc).unwrap().len(), 1);

    // Updates no longer reach the leaver.
    a.execute(Box::new(SetInt(oa, 8)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);
    assert_eq!(b.read_int_committed(ob), Some(8));
    assert_eq!(c.read_int_committed(oc), Some(0), "c left before the write");
    // And the leaver's own updates stay local.
    c.execute(Box::new(SetInt(oc, 77)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b, &mut c]);
    assert_eq!(c.read_int_committed(oc), Some(77));
    assert_eq!(a.read_int_committed(oa), Some(8));
}

#[test]
fn transactions_during_join_still_converge() {
    // A keeps updating while B's join is in flight.
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let oa = a.create_int(0);
    let assoc = a.create_association();
    let rel = a.create_relation(assoc, "live", oa).unwrap();
    let invitation = a.make_invitation(assoc, rel).unwrap();

    let ob = b.create_int(0);
    b.join(invitation, ob).unwrap();
    // Before any join message is delivered, A updates the object.
    a.execute(Box::new(SetInt(oa, 5)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    // The join either adopted the pre-update or post-update value, but
    // after quiescence both replicas agree.
    assert_eq!(
        a.read_int_committed(oa),
        b.read_int_committed(ob),
        "replicas agree after join + concurrent update"
    );
    assert_eq!(a.read_int_committed(oa), Some(5));
}

#[test]
fn scalar_equality_after_many_post_join_updates() {
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let oa = a.create_int(0);
    let assoc = a.create_association();
    let rel = a.create_relation(assoc, "counter", oa).unwrap();
    let invitation = a.make_invitation(assoc, rel).unwrap();
    let ob = b.create_int(0);
    b.join(invitation, ob).unwrap();
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);

    for _ in 0..10 {
        a.execute(Box::new(Incr(oa)));
        wiring::run_to_quiescence(&mut [&mut a, &mut b]);
        b.execute(Box::new(Incr(ob)));
        wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    }
    assert_eq!(a.read_int_committed(oa), Some(20));
    assert_eq!(b.read_int_committed(ob), Some(20));
}

#[test]
fn str_and_real_objects_replicate_after_join() {
    struct SetStr(ObjectName, &'static str);
    impl Transaction for SetStr {
        fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
            ctx.write_str(self.0, self.1)
        }
    }
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let sa = a.create_str("hello");
    let assoc = a.create_association();
    let rel = a.create_relation(assoc, "title", sa).unwrap();
    let invitation = a.make_invitation(assoc, rel).unwrap();
    let sb = b.create_str("");
    b.join(invitation, sb).unwrap();
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(b.read_str_committed(sb).as_deref(), Some("hello"));
    b.execute(Box::new(SetStr(sb, "goodbye")));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    assert_eq!(a.read_str_committed(sa).as_deref(), Some("goodbye"));
    let _ = ScalarValue::Int(0);
}

#[test]
fn joiners_old_replicas_adopt_at_original_value_vt() {
    // Sites 1+2 already collaborate on a counter; site 3 owns a counter
    // with real history. Site 1 joins site 3's relationship; site 2 (the
    // joiner's old replica) adopts the value through the GraphUpdate path.
    // Its subsequent read-modify-write must commit without livelocking —
    // which requires the adopted value to carry site 3's original VT.
    let mut s1 = Site::new(SiteId(1));
    let mut s2 = Site::new(SiteId(2));
    let mut s3 = Site::new(SiteId(3));

    let c3 = s3.create_int(0);
    // Give site 3's object real history at non-trivial VTs.
    for _ in 0..5 {
        s3.execute(Box::new(Incr(c3)));
    }
    let assoc = s3.create_association();
    let rel = s3.create_relation(assoc, "tally", c3).unwrap();
    wiring::run_to_quiescence(&mut [&mut s1, &mut s2, &mut s3]);
    let invitation = s3.make_invitation(assoc, rel).unwrap();

    // Sites 1+2 pre-wire their own pair.
    let c1 = s1.create_int(0);
    let c2 = s2.create_int(0);
    wiring::wire_pair(&mut s1, c1, &mut s2, c2);

    // Site 1 joins site 3's relationship with the already-replicated c1.
    s1.join(invitation, c1).unwrap();
    wiring::run_to_quiescence(&mut [&mut s1, &mut s2, &mut s3]);
    assert_eq!(join_completed(&mut s1), Some(true));
    assert_eq!(s1.read_int_committed(c1), Some(5), "joiner adopted");
    assert_eq!(s2.read_int_committed(c2), Some(5), "old replica adopted");

    // The old replica immediately increments — must commit, not livelock.
    let h = s2.execute(Box::new(Incr(c2)));
    wiring::run_to_quiescence(&mut [&mut s1, &mut s2, &mut s3]);
    assert_eq!(s2.txn_outcome(h), Some(decaf_core::TxnOutcome::Committed));
    for (s, c) in [(&s1, c1), (&s2, c2), (&s3, c3)] {
        assert_eq!(s.read_int_committed(c), Some(6));
    }
}
