//! End-to-end stitcher checks over the deterministic simulator: a 3-site
//! checked run re-runs byte-identically through [`decaf_trace::Stitcher`],
//! and artificially injected per-site clock skew is recovered by the
//! minimum one-way delay estimator to within one jitter bound.

use decaf_check::{run_once, FaultPlan, ScenarioConfig};
use decaf_trace::{Stitcher, TraceEvent, TraceKind};

fn traced_run(cfg: &ScenarioConfig, seed: u64) -> Vec<String> {
    let report = run_once(cfg, &FaultPlan::quiet(), seed, None);
    assert!(
        report.violations.is_empty(),
        "clean run must uphold every oracle: {:?}",
        report.violations
    );
    report.trace
}

#[test]
fn three_site_run_stitches_byte_identically() {
    let cfg = ScenarioConfig::default();
    let a = traced_run(&cfg, 7);
    let b = traced_run(&cfg, 7);
    assert_eq!(a, b, "same (config, plan, seed) must replay the same trace");

    // The harness's sim delivery carries the envelope span context on both
    // ends, so the merged trace is stitchable.
    let text = a.join("\n");
    assert!(text.contains("\"kind\":\"MsgSend\""));
    assert!(text.contains("\"kind\":\"MsgRecv\""));

    let mut s1 = Stitcher::new();
    s1.observe_jsonl(&text).expect("self-written trace parses");
    let r1 = s1.finish();
    let mut s2 = Stitcher::new();
    s2.observe_jsonl(&b.join("\n"))
        .expect("replayed trace parses");
    let r2 = s2.finish();
    assert_eq!(r1.render(), r2.render(), "stitched report must be stable");

    assert_eq!(r1.sites, vec![1, 2, 3]);
    assert!(!r1.spans.is_empty(), "committed gestures must form spans");
    assert!(
        r1.incomplete.is_empty(),
        "kill-free quiescent trace must stitch completely: {:?}",
        r1.incomplete
    );
    // Every ordered site pair saw propagation traffic.
    for origin in 1u32..=3 {
        for remote in 1u32..=3 {
            if origin != remote {
                assert!(
                    r1.propagation.contains_key(&(origin, remote)),
                    "no propagation histogram for {origin}->{remote}"
                );
            }
        }
    }
    assert!(!r1.critical_paths.is_empty());
}

#[test]
fn injected_skew_recovered_within_one_jitter_bound() {
    let cfg = ScenarioConfig::default();
    let trace = traced_run(&cfg, 11);

    // Shift each non-reference site's clock by a known amount, as if the
    // dumps came from machines with offset (but drift-free) clocks.
    let shift_ns = |site: u32| -> u64 {
        match site {
            2 => 5_000_000,  // +5 ms
            3 => 12_000_000, // +12 ms
            _ => 0,
        }
    };
    let mut stitcher = Stitcher::new();
    let mut sends = 0u64;
    for line in &trace {
        let mut ev = TraceEvent::from_jsonl(line).expect("self-written trace parses");
        ev.ts_ns += shift_ns(ev.site);
        if ev.kind == TraceKind::MsgSend {
            sends += 1;
        }
        stitcher.observe(&ev);
    }
    assert!(sends > 0, "need wire traffic to estimate skew");
    let report = stitcher.finish();

    // Minimum one-way delay symmetrizes the jitter away up to one jitter
    // amplitude (`jitter * latency`) of residual error.
    let bound = (cfg.jitter * cfg.latency_ms as f64 * 1_000_000.0) as i64;
    for site in [2u32, 3] {
        let got = report.offsets_ns[&site];
        let want = shift_ns(site) as i64;
        assert!(
            (got - want).abs() <= bound,
            "site {site}: recovered offset {got}ns, injected {want}ns, bound {bound}ns"
        );
    }
}
