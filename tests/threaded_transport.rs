//! Integration: the sans-I/O engine under *real* thread concurrency on the
//! crossbeam-channel transport, mirroring the paper's one-JVM-per-user
//! deployment.

use std::time::Duration;

use decaf_core::{wiring, Envelope, ObjectName, Site, Transaction, TxnCtx, TxnError};
use decaf_net::threaded::ThreadedNet;
use decaf_net::TransportEvent;
use decaf_vt::SiteId;

struct Incr(ObjectName);
impl Transaction for Incr {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + 1)
    }
}

struct Blind(ObjectName, i64);
impl Transaction for Blind {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.write_int(self.0, self.1)
    }
}

/// Runs `sites` threads, each submitting `work(site_index)` transactions,
/// then pumping until global quiescence; returns each site's committed
/// value.
fn run_threads(n: u32, per_site: i64, blind: bool) -> Vec<Option<i64>> {
    let mut net: ThreadedNet<Envelope> = ThreadedNet::new(n as usize, Duration::from_millis(1));
    let mut sites: Vec<Site> = (0..n).map(|i| Site::new(SiteId(i))).collect();
    let objs: Vec<ObjectName> = sites.iter_mut().map(|s| s.create_int(0)).collect();
    {
        let mut parts: Vec<(&mut Site, ObjectName)> =
            sites.iter_mut().zip(objs.iter().copied()).collect();
        wiring::wire_replicas(&mut parts);
    }
    let mut handles = Vec::new();
    for (idx, (mut site, obj)) in sites.into_iter().zip(objs).enumerate() {
        let endpoint = net.endpoint(site.id());
        handles.push(std::thread::spawn(move || {
            let mut submitted = 0i64;
            let mut last: Option<decaf_core::TxnHandle> = None;
            let mut idle = 0u32;
            loop {
                // Pace like a user: next gesture once the previous decided.
                let prior_done = last.map(|h| site.txn_outcome(h).is_some()).unwrap_or(true);
                if submitted < per_site && prior_done {
                    let h = if blind {
                        site.execute(Box::new(Blind(obj, (idx as i64) * 1000 + submitted)))
                    } else {
                        site.execute(Box::new(Incr(obj)))
                    };
                    last = Some(h);
                    submitted += 1;
                }
                for env in site.drain_outbox() {
                    endpoint.send(env.to, env);
                }
                let mut got = false;
                while let Some(event) = endpoint.try_recv() {
                    got = true;
                    match event {
                        TransportEvent::Message { msg, .. } => site.handle_message(msg),
                        TransportEvent::SiteFailed { failed } => site.notify_site_failed(failed),
                    }
                }
                for env in site.drain_outbox() {
                    endpoint.send(env.to, env);
                }
                if submitted >= per_site && !got && site.is_quiescent() {
                    idle += 1;
                    if idle > 300 {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                } else {
                    idle = 0;
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            site.read_int_committed(obj)
        }));
    }
    let out = handles
        .into_iter()
        .map(|h| h.join().expect("site thread panicked"))
        .collect();
    net.shutdown();
    out
}

#[test]
fn concurrent_increments_from_three_threads_are_exact() {
    let values = run_threads(3, 10, false);
    for v in &values {
        assert_eq!(*v, Some(30), "every replica must read 3 * 10: {values:?}");
    }
}

#[test]
fn concurrent_blind_writes_from_four_threads_converge() {
    let values = run_threads(4, 8, true);
    assert!(values[0].is_some());
    for v in &values {
        assert_eq!(*v, values[0], "replicas must converge: {values:?}");
    }
}

#[test]
fn two_threads_higher_volume() {
    let values = run_threads(2, 40, false);
    for v in &values {
        assert_eq!(*v, Some(80), "{values:?}");
    }
}
