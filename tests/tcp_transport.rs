//! Integration: three **real OS processes** (the `decaf-site` daemon) on a
//! loopback TCP mesh — the paper's deployment shape, one process per user
//! (§5.2).
//!
//! Choreography:
//!
//! 1. Spawn three `decaf-site` processes, each submitting read-write
//!    increment transactions against the shared replicated counter, and
//!    wait until every process reports `phase1-done value=6` (2 txns × 3
//!    sites). This proves commitment works across process boundaries and
//!    kernel sockets, not just in-process channels.
//! 2. SIGKILL site 3 — a genuine fail-stop crash, no goodbye message. The
//!    kill deliberately happens only *after* phase 1, while all sites are
//!    otherwise idle: the survivors' evidence of the crash is purely the
//!    transport's keepalive/reconnect machinery giving up.
//! 3. The survivors must observe the transport's `SiteFailed` verdict,
//!    run the §3.4 failure recovery, and then commit two more increments
//!    each (`final value=10` = 6 + 2 × 2 survivors), exiting 0.

use std::fs;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SITES: u32 = 3;
const TXNS: u64 = 2;
const ON_FAIL_TXNS: u64 = 2;
const PHASE1_TARGET: i64 = TXNS as i64 * SITES as i64; // 6
const FINAL_TARGET: i64 = PHASE1_TARGET + ON_FAIL_TXNS as i64 * (SITES as i64 - 1); // 10

struct Daemon {
    child: Child,
    log: PathBuf,
}

impl Daemon {
    fn log_contents(&self) -> String {
        fs::read_to_string(&self.log).unwrap_or_default()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = fs::remove_file(&self.log);
    }
}

/// Lets the kernel pick a free loopback port; the listener is dropped just
/// before the daemon rebinds it.
fn reserve_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    l.local_addr().expect("local addr").to_string()
}

fn spawn_site(site: u32, addrs: &[String]) -> Daemon {
    let log = std::env::temp_dir().join(format!(
        "decaf-tcp-test-{}-site{site}.log",
        std::process::id()
    ));
    let out = fs::File::create(&log).expect("create log file");
    let err = out.try_clone().expect("clone log handle");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_decaf-site"));
    cmd.arg("--site")
        .arg(site.to_string())
        .arg("--listen")
        .arg(&addrs[(site - 1) as usize])
        .arg("--txns")
        .arg(TXNS.to_string())
        .arg("--on-fail-txns")
        .arg(ON_FAIL_TXNS.to_string())
        .arg("--linger-ms")
        .arg("500")
        .arg("--max-runtime-ms")
        .arg("60000")
        .stdin(Stdio::null())
        .stdout(out)
        .stderr(err);
    for peer in 1..=SITES {
        if peer != site {
            cmd.arg("--peer")
                .arg(format!("{peer}={}", addrs[(peer - 1) as usize]));
        }
    }
    let child = cmd.spawn().expect("spawn decaf-site");
    Daemon { child, log }
}

/// Polls all daemons' logs until each contains `needle`, failing loudly on
/// timeout or if any daemon exits prematurely.
fn await_in_logs(daemons: &mut [Daemon], needle: &str, timeout: Duration) {
    let start = Instant::now();
    loop {
        if daemons.iter().all(|d| d.log_contents().contains(needle)) {
            return;
        }
        for d in daemons.iter_mut() {
            if let Ok(Some(status)) = d.child.try_wait() {
                panic!(
                    "daemon exited ({status}) before printing {needle:?}; log:\n{}",
                    d.log_contents()
                );
            }
        }
        assert!(
            start.elapsed() < timeout,
            "timed out waiting for {needle:?}; logs:\n{}",
            daemons
                .iter()
                .map(|d| d.log_contents())
                .collect::<Vec<_>>()
                .join("---\n")
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn wait_success(d: &mut Daemon) {
    let status = d.child.wait().expect("wait daemon");
    assert!(
        status.success(),
        "daemon exited {status}; log:\n{}",
        d.log_contents()
    );
}

#[test]
fn three_processes_converge_and_survive_a_sigkill() {
    let addrs: Vec<String> = (0..SITES).map(|_| reserve_addr()).collect();
    let mut daemons: Vec<Daemon> = (1..=SITES).map(|i| spawn_site(i, &addrs)).collect();

    // Phase 1: all three processes commit the full increment chain over
    // real sockets.
    await_in_logs(
        &mut daemons,
        &format!("phase1-done value={PHASE1_TARGET}"),
        Duration::from_secs(30),
    );

    // Fail-stop crash: SIGKILL site 3. No shutdown handshake — survivors
    // must detect the loss from keepalive silence + reconnect exhaustion.
    let mut victim = daemons.pop().unwrap();
    victim.child.kill().expect("sigkill site 3");
    let _ = victim.child.wait();

    // Survivors observe the transport-announced failure...
    await_in_logs(&mut daemons, "site-failed 3", Duration::from_secs(30));

    // ...complete §3.4 recovery, and commit the post-failure workload.
    await_in_logs(
        &mut daemons,
        &format!("final value={FINAL_TARGET}"),
        Duration::from_secs(30),
    );
    for d in daemons.iter_mut() {
        wait_success(d);
    }

    // Both survivors settled on the identical final value, and neither
    // socket stream ever produced a malformed frame.
    for d in &daemons {
        let log = d.log_contents();
        assert!(
            log.contains(&format!("final value={FINAL_TARGET}")),
            "survivor log:\n{log}"
        );
        assert!(log.contains("(0 rejected)"), "survivor log:\n{log}");
    }

    // The victim never printed a final value: it was killed, not finished.
    assert!(
        !victim.log_contents().contains("final value"),
        "victim log:\n{}",
        victim.log_contents()
    );
}

#[test]
fn single_site_mesh_runs_standalone() {
    // Degenerate deployment: one process, no peers. The daemon must still
    // commit its local transactions (target = txns × 1) and exit cleanly.
    let addr = reserve_addr();
    let log = std::env::temp_dir().join(format!("decaf-tcp-test-{}-solo.log", std::process::id()));
    let out = fs::File::create(&log).expect("create log file");
    let err = out.try_clone().expect("clone log handle");
    let child = Command::new(env!("CARGO_BIN_EXE_decaf-site"))
        .args(["--site", "1", "--listen", &addr, "--txns", "3"])
        .args(["--linger-ms", "0", "--max-runtime-ms", "30000"])
        .stdin(Stdio::null())
        .stdout(out)
        .stderr(err)
        .spawn()
        .expect("spawn decaf-site");
    let mut d = Daemon { child, log };
    wait_success(&mut d);
    let contents = d.log_contents();
    assert!(contents.contains("final value=3"), "log:\n{contents}");
}
