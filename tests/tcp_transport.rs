//! Integration: three **real OS processes** (the `decaf-site` daemon) on a
//! loopback TCP mesh — the paper's deployment shape, one process per user
//! (§5.2).
//!
//! Choreography:
//!
//! 1. Spawn three `decaf-site` processes, each submitting read-write
//!    increment transactions against the shared replicated counter, and
//!    wait until every process reports `phase1-done value=6` (2 txns × 3
//!    sites). This proves commitment works across process boundaries and
//!    kernel sockets, not just in-process channels.
//! 2. SIGKILL site 3 — a genuine fail-stop crash, no goodbye message. The
//!    kill deliberately happens only *after* phase 1, while all sites are
//!    otherwise idle: the survivors' evidence of the crash is purely the
//!    transport's keepalive/reconnect machinery giving up.
//! 3. The survivors must observe the transport's `SiteFailed` verdict,
//!    run the §3.4 failure recovery, and then commit two more increments
//!    each (`final value=10` = 6 + 2 × 2 survivors), exiting 0.
//!
//! A second scenario exercises the durability path instead: site 3 runs
//! with `--data-dir`, is SIGKILLed after fsyncing phase 1 to its
//! write-ahead log, and is restarted from the same directory — it must
//! replay the log, rejoin via the §3.4 catch-up protocol, and converge
//! with the survivors on the identical final value.

use std::fs;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SITES: u32 = 3;
const TXNS: u64 = 2;
const ON_FAIL_TXNS: u64 = 2;
const PHASE1_TARGET: i64 = TXNS as i64 * SITES as i64; // 6
const FINAL_TARGET: i64 = PHASE1_TARGET + ON_FAIL_TXNS as i64 * (SITES as i64 - 1); // 10

struct Daemon {
    child: Child,
    log: PathBuf,
}

impl Daemon {
    fn log_contents(&self) -> String {
        fs::read_to_string(&self.log).unwrap_or_default()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = fs::remove_file(&self.log);
    }
}

/// Lets the kernel pick a free loopback port; the listener is dropped just
/// before the daemon rebinds it.
fn reserve_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    l.local_addr().expect("local addr").to_string()
}

/// Builds the shared parts of a `decaf-site` invocation: log redirection
/// (the `tag` keeps a restarted process's log distinct from its first
/// incarnation's), listen address, peer table, and the runtime ceiling.
/// Callers add the workload flags and spawn.
fn site_cmd(site: u32, tag: &str, addrs: &[String]) -> (Command, PathBuf) {
    let log = std::env::temp_dir().join(format!(
        "decaf-tcp-test-{}-site{site}{tag}.log",
        std::process::id()
    ));
    let out = fs::File::create(&log).expect("create log file");
    let err = out.try_clone().expect("clone log handle");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_decaf-site"));
    cmd.arg("--site")
        .arg(site.to_string())
        .arg("--listen")
        .arg(&addrs[(site - 1) as usize])
        .arg("--max-runtime-ms")
        .arg("60000")
        .stdin(Stdio::null())
        .stdout(out)
        .stderr(err);
    for peer in 1..=SITES {
        if peer != site {
            cmd.arg("--peer")
                .arg(format!("{peer}={}", addrs[(peer - 1) as usize]));
        }
    }
    (cmd, log)
}

fn spawn_site(site: u32, addrs: &[String]) -> Daemon {
    let (mut cmd, log) = site_cmd(site, "", addrs);
    cmd.arg("--txns")
        .arg(TXNS.to_string())
        .arg("--on-fail-txns")
        .arg(ON_FAIL_TXNS.to_string())
        .arg("--linger-ms")
        .arg("500");
    let child = cmd.spawn().expect("spawn decaf-site");
    Daemon { child, log }
}

/// Polls all daemons' logs until each contains `needle`, failing loudly on
/// timeout or if any daemon exits prematurely.
fn await_in_logs(daemons: &mut [Daemon], needle: &str, timeout: Duration) {
    let start = Instant::now();
    loop {
        if daemons.iter().all(|d| d.log_contents().contains(needle)) {
            return;
        }
        for d in daemons.iter_mut() {
            if let Ok(Some(status)) = d.child.try_wait() {
                panic!(
                    "daemon exited ({status}) before printing {needle:?}; log:\n{}",
                    d.log_contents()
                );
            }
        }
        assert!(
            start.elapsed() < timeout,
            "timed out waiting for {needle:?}; logs:\n{}",
            daemons
                .iter()
                .map(|d| d.log_contents())
                .collect::<Vec<_>>()
                .join("---\n")
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn wait_success(d: &mut Daemon) {
    let status = d.child.wait().expect("wait daemon");
    assert!(
        status.success(),
        "daemon exited {status}; log:\n{}",
        d.log_contents()
    );
}

#[test]
fn three_processes_converge_and_survive_a_sigkill() {
    let addrs: Vec<String> = (0..SITES).map(|_| reserve_addr()).collect();
    let mut daemons: Vec<Daemon> = (1..=SITES).map(|i| spawn_site(i, &addrs)).collect();

    // Phase 1: all three processes commit the full increment chain over
    // real sockets.
    await_in_logs(
        &mut daemons,
        &format!("phase1-done value={PHASE1_TARGET}"),
        Duration::from_secs(30),
    );

    // Fail-stop crash: SIGKILL site 3. No shutdown handshake — survivors
    // must detect the loss from keepalive silence + reconnect exhaustion.
    let mut victim = daemons.pop().unwrap();
    victim.child.kill().expect("sigkill site 3");
    let _ = victim.child.wait();

    // Survivors observe the transport-announced failure...
    await_in_logs(&mut daemons, "site-failed 3", Duration::from_secs(30));

    // ...complete §3.4 recovery, and commit the post-failure workload.
    await_in_logs(
        &mut daemons,
        &format!("final value={FINAL_TARGET}"),
        Duration::from_secs(30),
    );
    for d in daemons.iter_mut() {
        wait_success(d);
    }

    // Both survivors settled on the identical final value, and neither
    // socket stream ever produced a malformed frame.
    for d in &daemons {
        let log = d.log_contents();
        assert!(
            log.contains(&format!("final value={FINAL_TARGET}")),
            "survivor log:\n{log}"
        );
        assert!(log.contains("(0 rejected)"), "survivor log:\n{log}");
    }

    // The victim never printed a final value: it was killed, not finished.
    assert!(
        !victim.log_contents().contains("final value"),
        "victim log:\n{}",
        victim.log_contents()
    );
}

#[test]
fn durable_site_recovers_from_sigkill_and_rejoins() {
    // Crash durability, end to end over real processes and sockets:
    //
    // 1. Sites 1 and 2 run 3 txns each and wait for the grand total of 11
    //    (9 from phase 1 + 2 from the victim's second incarnation).
    // 2. Site 3 runs durable (`--data-dir`): every commit is fsynced to
    //    its write-ahead log before the commit broadcast leaves the
    //    process. It targets only the phase-1 total (9) and lingers long,
    //    so the SIGKILL below always lands before a clean exit.
    // 3. Once site 3 reports `phase1-done value=9` — by which point all 9
    //    commits are on disk, because the daemon drains the WAL ahead of
    //    the phase check in the same pump iteration — it gets SIGKILLed
    //    and immediately restarted from the same data dir and address.
    // 4. The restart must replay the log (`recovered wal-records=`), run
    //    the §3.4 rejoin/catch-up (`rejoin peers=2`), then commit 2 fresh
    //    txns. All three processes converge on 11 and exit 0 printing the
    //    identical `exit value=11`.
    let addrs: Vec<String> = (0..SITES).map(|_| reserve_addr()).collect();
    let data_dir =
        std::env::temp_dir().join(format!("decaf-tcp-test-{}-site3-wal", std::process::id()));
    let _ = fs::remove_dir_all(&data_dir);
    fs::create_dir_all(&data_dir).expect("create data dir");

    let mut survivors: Vec<Daemon> = (1..=2)
        .map(|i| {
            let (mut cmd, log) = site_cmd(i, "", &addrs);
            cmd.args([
                "--txns",
                "3",
                "--phase1-target",
                "11",
                "--linger-ms",
                "4000",
            ]);
            let child = cmd.spawn().expect("spawn survivor");
            Daemon { child, log }
        })
        .collect();
    let mut victim1 = {
        let (mut cmd, log) = site_cmd(3, "-run1", &addrs);
        cmd.args([
            "--txns",
            "3",
            "--phase1-target",
            "9",
            "--linger-ms",
            "30000",
        ]);
        cmd.arg("--data-dir").arg(&data_dir);
        let child = cmd.spawn().expect("spawn durable victim");
        Daemon { child, log }
    };

    await_in_logs(
        std::slice::from_mut(&mut victim1),
        "phase1-done value=9",
        Duration::from_secs(30),
    );
    victim1.child.kill().expect("sigkill durable site 3");
    let _ = victim1.child.wait();

    // Restart quickly — while the survivors' reconnect loops are still
    // retrying — from the same WAL and the same listen address. The new
    // incarnation submits 2 more txns once its rejoin completes.
    let mut victim2 = {
        let (mut cmd, log) = site_cmd(3, "-run2", &addrs);
        cmd.args([
            "--txns",
            "2",
            "--phase1-target",
            "11",
            "--linger-ms",
            "4000",
        ]);
        cmd.arg("--data-dir").arg(&data_dir);
        let child = cmd.spawn().expect("respawn durable victim");
        Daemon { child, log }
    };

    // Recovery contract lines: WAL replay restores the full phase-1 state
    // (all 9 commits were fsynced before `phase1-done` printed), then the
    // rejoin announcement goes to both peers.
    await_in_logs(
        std::slice::from_mut(&mut victim2),
        "recovered wal-records=",
        Duration::from_secs(30),
    );
    await_in_logs(
        std::slice::from_mut(&mut victim2),
        "rejoin peers=2",
        Duration::from_secs(30),
    );
    let recovered_line = victim2
        .log_contents()
        .lines()
        .find(|l| l.starts_with("recovered wal-records="))
        .expect("recovered line just awaited")
        .to_string();
    assert!(
        recovered_line.ends_with(" value=9"),
        "replay must restore the pre-crash committed value: {recovered_line}"
    );
    let replayed: u64 = recovered_line
        .strip_prefix("recovered wal-records=")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .expect("parse wal-records count");
    assert!(
        replayed >= 9,
        "the WAL must hold at least the 9 phase-1 commits: {recovered_line}"
    );

    // Everyone — survivors and the restarted victim — converges on the
    // grand total and exits cleanly.
    await_in_logs(&mut survivors, "final value=11", Duration::from_secs(30));
    await_in_logs(
        std::slice::from_mut(&mut victim2),
        "final value=11",
        Duration::from_secs(30),
    );
    for d in survivors.iter_mut() {
        wait_success(d);
    }
    wait_success(&mut victim2);

    // Convergence through the restart: all three processes report the
    // identical committed value at exit.
    fn exit_value(log: &str) -> i64 {
        log.lines()
            .find_map(|l| l.strip_prefix("exit value="))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("no exit value in log:\n{log}"))
    }
    let values: Vec<i64> = survivors
        .iter()
        .map(|d| exit_value(&d.log_contents()))
        .chain(std::iter::once(exit_value(&victim2.log_contents())))
        .collect();
    assert_eq!(values, vec![11, 11, 11], "exit values must agree");

    // The second incarnation kept appending to the same log file, and the
    // first never exited cleanly (it was killed mid-linger).
    assert!(
        victim2.log_contents().contains("wal-summary appends="),
        "victim log:\n{}",
        victim2.log_contents()
    );
    assert!(
        !victim1.log_contents().contains("exit value"),
        "victim run 1 log:\n{}",
        victim1.log_contents()
    );
    let _ = fs::remove_dir_all(&data_dir);
}

#[test]
fn single_site_mesh_runs_standalone() {
    // Degenerate deployment: one process, no peers. The daemon must still
    // commit its local transactions (target = txns × 1) and exit cleanly.
    let addr = reserve_addr();
    let log = std::env::temp_dir().join(format!("decaf-tcp-test-{}-solo.log", std::process::id()));
    let out = fs::File::create(&log).expect("create log file");
    let err = out.try_clone().expect("clone log handle");
    let child = Command::new(env!("CARGO_BIN_EXE_decaf-site"))
        .args(["--site", "1", "--listen", &addr, "--txns", "3"])
        .args(["--linger-ms", "0", "--max-runtime-ms", "30000"])
        .stdin(Stdio::null())
        .stdout(out)
        .stderr(err)
        .spawn()
        .expect("spawn decaf-site");
    let mut d = Daemon { child, log };
    wait_success(&mut d);
    let contents = d.log_contents();
    assert!(contents.contains("final value=3"), "log:\n{contents}");
}
