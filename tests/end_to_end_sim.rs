//! Cross-crate integration: DECAF sites on the deterministic simulator
//! under sustained mixed workloads — convergence, view guarantees, GC, and
//! latency shapes, all in one run.

use decaf_core::{RecordingView, ScalarValue, ViewEvent, ViewMode};
use decaf_net::sim::{LatencyModel, SimTime};
use decaf_vt::SiteId;
use decaf_workload::{
    ArrivalProcess, BlindWrite, LatencyTracker, ReadModifyWrite, SimWorld, WorldStep,
};

#[test]
fn sustained_mixed_workload_converges_with_correct_views() {
    let mut world = SimWorld::new(3, LatencyModel::uniform(SimTime::from_millis(40)));
    let objs = world.wire_int(0);

    // A pessimistic ledger at site 3 and an optimistic screen at site 1.
    let ledger = RecordingView::new(vec![objs[2]]);
    let ledger_log = ledger.log();
    world
        .site(SiteId(3))
        .attach_view(Box::new(ledger), &[objs[2]], ViewMode::Pessimistic);
    let screen = RecordingView::new(vec![objs[0]]);
    world
        .site(SiteId(1))
        .attach_view(Box::new(screen), &[objs[0]], ViewMode::Optimistic);

    // Sites 1 and 2 run read-modify-writes; site 3 blind-writes markers.
    let mut arrivals = [
        ArrivalProcess::poisson(1.0, 11),
        ArrivalProcess::poisson(0.7, 22),
        ArrivalProcess::poisson(0.3, 33),
    ];
    for i in 0..3u32 {
        let d = arrivals[i as usize].next_delay();
        world.set_timer(SiteId(i + 1), d, 0);
    }
    let deadline = SimTime::from_secs(60);
    let mut marker = 1000i64;
    while let Some(step) = world.step() {
        if world.now() > deadline {
            break;
        }
        if let WorldStep::Timer { site, .. } = step {
            let idx = (site.0 - 1) as usize;
            let obj = objs[idx];
            if site == SiteId(3) {
                marker += 1;
                world.site(site).execute(Box::new(BlindWrite {
                    object: obj,
                    value: marker,
                }));
            } else {
                world.site(site).execute(Box::new(ReadModifyWrite {
                    object: obj,
                    delta: 1,
                }));
            }
            let d = arrivals[idx].next_delay();
            world.set_timer(site, d, 0);
        }
    }
    world.run_to_quiescence();

    // Convergence: all replicas agree on committed and current values.
    let committed: Vec<Option<i64>> = (0..3)
        .map(|i| {
            world
                .site(SiteId(i + 1))
                .read_int_committed(objs[i as usize])
        })
        .collect();
    assert!(
        committed.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged: {committed:?}"
    );

    // GC: histories stay bounded at quiescence. Retention above the
    // peer-message horizon is by design (it is the RL/NC evidence against
    // racing stale writes), so the bound is a small lag window — far below
    // the hundreds of updates the run performed.
    for i in 0..3 {
        let len = world.site(SiteId(i + 1)).history_len(objs[i as usize]);
        assert!(len <= 40, "history not collected at site {}: {len}", i + 1);
    }

    // The pessimistic ledger's last value equals the committed state, and
    // it never saw a Commit event (only committed updates).
    let events = ledger_log.lock().unwrap();
    assert!(!events.iter().any(|e| matches!(e, ViewEvent::Commit)));
    let last = events
        .iter()
        .rev()
        .find_map(|e| match e {
            ViewEvent::Update { values, .. } => values.first().map(|(_, v)| v.clone()),
            _ => None,
        })
        .expect("ledger saw updates");
    assert_eq!(Some(last), committed[2].map(ScalarValue::Int));

    // The workload actually exercised optimism: some work committed, and
    // there were some conflicts + retries that all resolved.
    let totals = world.total_stats();
    assert!(totals.txns_committed > 50, "{totals}");
    assert_eq!(
        totals.txns_started,
        totals.txns_committed + totals.txns_aborted_user,
        "every started txn eventually committed (conflict aborts retried): {totals}"
    );
}

#[test]
fn commit_latencies_scale_linearly_with_network_latency() {
    // 2t at the originator across a latency sweep: the E1 shape, asserted.
    let mut previous = 0.0;
    for t_ms in [10u64, 20, 40] {
        let mut world = SimWorld::new(2, LatencyModel::uniform(SimTime::from_millis(t_ms)));
        let objs = world.wire_int(0);
        let obj = objs[1];
        world.site(SiteId(2)).execute(Box::new(ReadModifyWrite {
            object: obj,
            delta: 1,
        }));
        world.run_to_quiescence();
        let mut lt = LatencyTracker::new();
        lt.ingest(&world.log);
        let origin = LatencyTracker::mean_ms(&lt.at_origin);
        assert!(
            (origin - 2.0 * t_ms as f64).abs() < 1e-9,
            "t={t_ms}: origin commit {origin} != 2t"
        );
        assert!(origin > previous);
        previous = origin;
    }
}

#[test]
fn jittered_latency_still_converges() {
    let model = LatencyModel::uniform(SimTime::from_millis(30)).with_jitter(0.3, 99);
    let mut world = SimWorld::new(3, LatencyModel::uniform(SimTime::from_millis(30)));
    world.net = decaf_net::sim::SimNet::new(model);
    let objs = world.wire_int(0);
    for round in 0..10 {
        let site = SiteId(round % 3 + 1);
        let obj = objs[(site.0 - 1) as usize];
        world.site(site).execute(Box::new(ReadModifyWrite {
            object: obj,
            delta: 1,
        }));
        world.run_to_quiescence();
    }
    for i in 0..3 {
        assert_eq!(
            world
                .site(SiteId(i + 1))
                .read_int_committed(objs[i as usize]),
            Some(10)
        );
    }
}

#[test]
fn failure_mid_workload_recovers_and_continues() {
    let mut world = SimWorld::new(3, LatencyModel::uniform(SimTime::from_millis(20)));
    let objs = world.wire_int(0);
    // Some committed traffic first.
    for _ in 0..3 {
        let obj = objs[1];
        world.site(SiteId(2)).execute(Box::new(ReadModifyWrite {
            object: obj,
            delta: 1,
        }));
        world.run_to_quiescence();
    }
    // Kill the primary while a transaction is in flight.
    let obj3 = objs[2];
    world.site(SiteId(3)).execute(Box::new(ReadModifyWrite {
        object: obj3,
        delta: 1,
    }));
    world.fail_site(SiteId(1));
    world.run_to_quiescence();

    let v2 = world.site(SiteId(2)).read_int_committed(objs[1]);
    let v3 = world.site(SiteId(3)).read_int_committed(objs[2]);
    assert_eq!(v2, v3, "survivors agree after primary failure");
    // Post-recovery progress.
    let obj2 = objs[1];
    world.site(SiteId(2)).execute(Box::new(ReadModifyWrite {
        object: obj2,
        delta: 10,
    }));
    world.run_to_quiescence();
    assert_eq!(
        world.site(SiteId(2)).read_int_committed(objs[1]),
        world.site(SiteId(3)).read_int_committed(objs[2]),
    );
}

#[test]
fn partition_surfaced_as_failure_then_rejoin() {
    // The paper's disconnection model (§3.4): "connectivity to a client may
    // also be lost ... presented to the application as fail-stop failures;
    // further communication with failed or disconnected clients is
    // prevented by the communication layer until these clients rejoin the
    // collaboration by going through a join protocol as new members."
    let mut world = SimWorld::new(3, LatencyModel::uniform(SimTime::from_millis(15)));
    let objs = world.wire_int(0);
    // An association to rejoin through later.
    let assoc = world.site(SiteId(1)).create_association();
    let rel = world
        .site(SiteId(1))
        .create_relation(assoc, "doc", objs[0])
        .expect("relation");
    world.run_to_quiescence();

    let obj1 = objs[0];
    world.site(SiteId(1)).execute(Box::new(ReadModifyWrite {
        object: obj1,
        delta: 1,
    }));
    world.run_to_quiescence();

    // Site 3's modem drops: sever its links, then (per the model) surface
    // it as a fail-stop to the survivors.
    world.net.set_link_down(SiteId(1), SiteId(3));
    world.net.set_link_down(SiteId(2), SiteId(3));
    world.site(SiteId(1)).notify_site_failed(SiteId(3));
    world.site(SiteId(2)).notify_site_failed(SiteId(3));
    world.run_to_quiescence();
    assert_eq!(
        world
            .site(SiteId(1))
            .replication_graph(objs[0])
            .expect("graph")
            .len(),
        2
    );

    // Survivors continue.
    world.site(SiteId(2)).execute(Box::new(ReadModifyWrite {
        object: objs[1],
        delta: 10,
    }));
    world.run_to_quiescence();
    assert_eq!(world.site(SiteId(1)).read_int_committed(objs[0]), Some(11));
    assert_eq!(
        world.site(SiteId(3)).read_int_committed(objs[2]),
        Some(1),
        "the disconnected site is frozen at its last state"
    );

    // The modem reconnects: heal the links, rejoin as a new member.
    world.net.set_link_up(SiteId(1), SiteId(3));
    world.net.set_link_up(SiteId(2), SiteId(3));
    let invitation = world
        .site(SiteId(1))
        .make_invitation(assoc, rel)
        .expect("invitation");
    let fresh = world.site(SiteId(3)).create_int(0);
    world
        .site(SiteId(3))
        .join(invitation, fresh)
        .expect("join starts");
    world.run_to_quiescence();
    assert_eq!(
        world.site(SiteId(3)).read_int_committed(fresh),
        Some(11),
        "rejoined member catches up"
    );
    world.site(SiteId(3)).execute(Box::new(ReadModifyWrite {
        object: fresh,
        delta: 100,
    }));
    world.run_to_quiescence();
    assert_eq!(world.site(SiteId(1)).read_int_committed(objs[0]), Some(111));
    assert_eq!(world.site(SiteId(2)).read_int_committed(objs[1]), Some(111));
}

#[test]
fn five_site_soak_with_views_everywhere() {
    use decaf_core::RecordingView;
    // Five sites, one shared counter, views of both modes at every site,
    // mixed sustained workload: the full stack soaked at once.
    let mut world = SimWorld::new(5, LatencyModel::uniform(SimTime::from_millis(30)));
    let objs = world.wire_int(0);
    let mut pess_logs = Vec::new();
    for i in 0..5u32 {
        let site = SiteId(i + 1);
        let watch = vec![objs[i as usize]];
        world.site(site).attach_view(
            Box::new(RecordingView::new(watch.clone())),
            &watch,
            ViewMode::Optimistic,
        );
        let pess = RecordingView::new(watch.clone());
        pess_logs.push(pess.log());
        world
            .site(site)
            .attach_view(Box::new(pess), &watch, ViewMode::Pessimistic);
    }
    let mut arrivals: Vec<ArrivalProcess> = (0..5)
        .map(|i| ArrivalProcess::poisson(0.8, 100 + i as u64))
        .collect();
    for i in 0..5u32 {
        let d = arrivals[i as usize].next_delay();
        world.set_timer(SiteId(i + 1), d, 0);
    }
    let deadline = SimTime::from_secs(90);
    while let Some(step) = world.step() {
        if world.now() > deadline {
            break;
        }
        if let WorldStep::Timer { site, .. } = step {
            let idx = (site.0 - 1) as usize;
            let kind_blind = (site.0 + (world.now().as_micros() as u32 / 1000)) % 3 == 0;
            let obj = objs[idx];
            if kind_blind {
                world.site(site).execute(Box::new(BlindWrite {
                    object: obj,
                    value: site.0 as i64,
                }));
            } else {
                world.site(site).execute(Box::new(ReadModifyWrite {
                    object: obj,
                    delta: 1,
                }));
            }
            let d = arrivals[idx].next_delay();
            world.set_timer(site, d, 0);
        }
    }
    world.run_to_quiescence();

    // Convergence at all five sites.
    let reference = world.site(SiteId(1)).read_int_committed(objs[0]);
    for i in 1..5u32 {
        assert_eq!(
            world
                .site(SiteId(i + 1))
                .read_int_committed(objs[i as usize]),
            reference,
            "site {} diverged",
            i + 1
        );
    }
    // Every site quiescent and bounded.
    for i in 0..5u32 {
        let site = SiteId(i + 1);
        assert!(
            world.site(site).is_quiescent(),
            "site {site} stuck: {}",
            world.site(site).debug_stuck()
        );
        assert!(world.site(site).history_len(objs[i as usize]) <= 48);
    }
    // Pessimistic ledgers: each site's last shown value equals the final
    // committed value.
    for (i, log) in pess_logs.iter().enumerate() {
        let events = log.lock().expect("log");
        let last = events.iter().rev().find_map(|e| match e {
            ViewEvent::Update { values, .. } => values.first().map(|(_, v)| v.clone()),
            _ => None,
        });
        assert_eq!(
            last,
            reference.map(ScalarValue::Int),
            "site {}'s ledger ended wrong",
            i + 1
        );
    }
    let totals = world.total_stats();
    assert!(
        totals.txns_committed > 200,
        "substantial load ran: {totals}"
    );
}
