//! Integration: the full collaboration lifecycle over the simulator —
//! create, invite, join (with backlog adoption), collaborate, leave, fail —
//! across crates (§2.6, §3.3, §3.4).

use decaf_core::{Blueprint, EngineEvent, ObjectName, Transaction, TxnCtx, TxnError};
use decaf_net::sim::{LatencyModel, SimTime};
use decaf_vt::SiteId;
use decaf_workload::SimWorld;

struct Push(ObjectName, i64);
impl Transaction for Push {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.list_push(self.0, Blueprint::Int(self.1))?;
        Ok(())
    }
}

struct Add(ObjectName, i64);
impl Transaction for Add {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + self.1)
    }
}

fn list_ints(world: &mut SimWorld, site: SiteId, list: ObjectName) -> Vec<i64> {
    let children = world.site(site).list_children_current(list);
    children
        .into_iter()
        .filter_map(|c| world.site(site).read_int_committed(c))
        .collect()
}

#[test]
fn full_lifecycle_over_simulated_network() {
    let mut world = SimWorld::new(4, LatencyModel::uniform(SimTime::from_millis(35)));

    // Host builds a document and publishes an invitation.
    let doc1 = world.site(SiteId(1)).create_list();
    for v in [10, 20] {
        world.site(SiteId(1)).execute(Box::new(Push(doc1, v)));
    }
    let assoc = world.site(SiteId(1)).create_association();
    let rel = world
        .site(SiteId(1))
        .create_relation(assoc, "doc", doc1)
        .expect("relation");
    world.run_to_quiescence();
    let invitation = world
        .site(SiteId(1))
        .make_invitation(assoc, rel)
        .expect("invitation");

    // Three users join in sequence over the network.
    let mut docs = vec![doc1];
    for site in [SiteId(2), SiteId(3), SiteId(4)] {
        let local = world.site(site).create_list();
        world
            .site(site)
            .join(invitation, local)
            .expect("join starts");
        world.run_to_quiescence();
        let ok = world.log.iter().any(|e| {
            e.site == site && matches!(e.event, EngineEvent::JoinCompleted { ok: true, .. })
        });
        assert!(ok, "join from {site} must complete");
        assert_eq!(
            list_ints(&mut world, site, local),
            vec![10, 20],
            "backlog adopted at {site}"
        );
        docs.push(local);
    }
    for (i, doc) in docs.iter().enumerate() {
        assert_eq!(
            world
                .site(SiteId(i as u32 + 1))
                .replication_graph(*doc)
                .expect("graph")
                .len(),
            4
        );
    }

    // Everyone appends; all replicas converge.
    for (i, doc) in docs.iter().enumerate() {
        let site = SiteId(i as u32 + 1);
        world
            .site(site)
            .execute(Box::new(Push(*doc, 100 + i as i64)));
    }
    world.run_to_quiescence();
    let reference = list_ints(&mut world, SiteId(1), docs[0]);
    assert_eq!(reference.len(), 6);
    for (i, doc) in docs.iter().enumerate() {
        assert_eq!(
            list_ints(&mut world, SiteId(i as u32 + 1), *doc),
            reference,
            "replica {i} diverged"
        );
    }

    // Site 4 leaves; the rest keep working.
    world.site(SiteId(4)).leave(docs[3]).expect("leave");
    world.run_to_quiescence();
    assert_eq!(
        world
            .site(SiteId(1))
            .replication_graph(docs[0])
            .expect("graph")
            .len(),
        3
    );
    world.site(SiteId(2)).execute(Box::new(Push(docs[1], 999)));
    world.run_to_quiescence();
    assert_eq!(list_ints(&mut world, SiteId(1), docs[0]).len(), 7);
    assert_eq!(
        list_ints(&mut world, SiteId(4), docs[3]).len(),
        6,
        "the leaver no longer receives updates"
    );

    // Site 3 crashes; survivors repair and continue.
    world.fail_site(SiteId(3));
    world.run_to_quiescence();
    assert_eq!(
        world
            .site(SiteId(1))
            .replication_graph(docs[0])
            .expect("graph")
            .len(),
        2
    );
    world.site(SiteId(1)).execute(Box::new(Push(docs[0], 1234)));
    world.run_to_quiescence();
    assert_eq!(
        list_ints(&mut world, SiteId(1), docs[0]),
        list_ints(&mut world, SiteId(2), docs[1]),
    );
}

#[test]
fn join_and_scalar_counter_session() {
    // A second lifecycle focused on read-write counters and a later join
    // observing the adopted value mid-stream.
    let mut world = SimWorld::new(3, LatencyModel::uniform(SimTime::from_millis(15)));
    let counter1 = world.site(SiteId(1)).create_int(0);
    let assoc = world.site(SiteId(1)).create_association();
    let rel = world
        .site(SiteId(1))
        .create_relation(assoc, "tally", counter1)
        .expect("relation");
    world.run_to_quiescence();
    let invitation = world
        .site(SiteId(1))
        .make_invitation(assoc, rel)
        .expect("invitation");

    let counter2 = world.site(SiteId(2)).create_int(0);
    world
        .site(SiteId(2))
        .join(invitation, counter2)
        .expect("join");
    world.run_to_quiescence();

    for _ in 0..5 {
        world.site(SiteId(1)).execute(Box::new(Add(counter1, 1)));
        world.run_to_quiescence();
        world.site(SiteId(2)).execute(Box::new(Add(counter2, 1)));
        world.run_to_quiescence();
    }
    assert_eq!(world.site(SiteId(1)).read_int_committed(counter1), Some(10));

    // Third user joins late and sees 10 immediately.
    let counter3 = world.site(SiteId(3)).create_int(0);
    world
        .site(SiteId(3))
        .join(invitation, counter3)
        .expect("join");
    world.run_to_quiescence();
    assert_eq!(world.site(SiteId(3)).read_int_committed(counter3), Some(10));

    world.site(SiteId(3)).execute(Box::new(Add(counter3, 5)));
    world.run_to_quiescence();
    for (site, c) in [
        (SiteId(1), counter1),
        (SiteId(2), counter2),
        (SiteId(3), counter3),
    ] {
        assert_eq!(world.site(site).read_int_committed(c), Some(15));
    }
}
