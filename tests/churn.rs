//! Churn stress: members join and leave a live collaboration while updates
//! keep flowing — the paper's "users join and leave collaborative sessions"
//! motivation (§1) exercised end to end over the simulator.

use decaf_core::{EngineEvent, ObjectName, Transaction, TxnCtx, TxnError};
use decaf_net::sim::{LatencyModel, SimTime};
use decaf_vt::SiteId;
use decaf_workload::{ArrivalProcess, SimWorld, WorldStep};

struct Add(ObjectName, i64);
impl Transaction for Add {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + self.1)
    }
}

#[test]
fn members_join_and_leave_under_sustained_load() {
    let mut world = SimWorld::new(5, LatencyModel::uniform(SimTime::from_millis(20)));

    // Site 1 hosts the session; sites 2..=5 will churn through it.
    let counter1 = world.site(SiteId(1)).create_int(0);
    let assoc = world.site(SiteId(1)).create_association();
    let rel = world
        .site(SiteId(1))
        .create_relation(assoc, "session", counter1)
        .expect("relation");
    world.run_to_quiescence();
    let invitation = world
        .site(SiteId(1))
        .make_invitation(assoc, rel)
        .expect("invitation");

    // Host updates continuously.
    let mut host_arrivals = ArrivalProcess::poisson(2.0, 7);
    let d = host_arrivals.next_delay();
    world.set_timer(SiteId(1), d, 0);

    let mut member_objs: Vec<Option<ObjectName>> = vec![None; 6];
    let mut expected = 0i64;
    let mut phase = 0u32;
    let deadline = SimTime::from_secs(40);

    // Churn script on a coarse timer at site 1 (token 99): every 4 s a
    // membership event happens.
    world.set_timer(SiteId(1), SimTime::from_secs(4), 99);

    while let Some(step) = world.step() {
        if world.now() > deadline {
            break;
        }
        match step {
            WorldStep::Timer {
                site: SiteId(1),
                token: 0,
                ..
            } => {
                world.site(SiteId(1)).execute(Box::new(Add(counter1, 1)));
                expected += 1;
                let d = host_arrivals.next_delay();
                world.set_timer(SiteId(1), d, 0);
            }
            WorldStep::Timer { token: 99, .. } => {
                phase += 1;
                match phase {
                    // Sites 2, 3, 4 join in turn.
                    1..=3 => {
                        let sid = SiteId(phase + 1);
                        let local = world.site(sid).create_int(0);
                        member_objs[sid.0 as usize] = Some(local);
                        world.site(sid).join(invitation, local).expect("join");
                    }
                    // Site 3 leaves; site 5 joins.
                    4 => {
                        let local = member_objs[3].expect("site 3 joined");
                        world.site(SiteId(3)).leave(local).expect("leave");
                    }
                    5 => {
                        let sid = SiteId(5);
                        let local = world.site(sid).create_int(0);
                        member_objs[5] = Some(local);
                        world.site(sid).join(invitation, local).expect("join");
                    }
                    // A joined member contributes updates.
                    6..=8 => {
                        if let Some(obj) = member_objs[2] {
                            world.site(SiteId(2)).execute(Box::new(Add(obj, 1)));
                            expected += 1;
                        }
                    }
                    _ => {}
                }
                world.set_timer(SiteId(1), SimTime::from_secs(4), 99);
            }
            _ => {}
        }
    }
    world.run_to_quiescence();

    // Every join that started completed.
    let failed_joins = world
        .log
        .iter()
        .filter(|e| matches!(e.event, EngineEvent::JoinCompleted { ok: false, .. }))
        .count();
    assert_eq!(failed_joins, 0, "no join may fail in this script");

    // All *current* members agree on the committed value.
    let host_value = world.site(SiteId(1)).read_int_committed(counter1);
    assert_eq!(host_value, Some(expected), "host has every update");
    for sid in [SiteId(2), SiteId(4), SiteId(5)] {
        if let Some(obj) = member_objs[sid.0 as usize] {
            assert_eq!(
                world.site(sid).read_int_committed(obj),
                host_value,
                "member {sid} diverged"
            );
        }
    }
    // The leaver froze at its departure-time value (≤ the final value).
    if let Some(obj3) = member_objs[3] {
        let left_at = world.site(SiteId(3)).read_int_committed(obj3);
        assert!(left_at <= host_value, "leaver cannot be ahead");
    }
    // Graph reflects the final membership: sites 1, 2, 4, 5.
    assert_eq!(
        world
            .site(SiteId(1))
            .replication_graph(counter1)
            .expect("graph")
            .len(),
        4
    );
}

#[test]
fn rapid_sequential_joins_preserve_graph_consistency() {
    let mut world = SimWorld::new(6, LatencyModel::uniform(SimTime::from_millis(10)));
    let counter1 = world.site(SiteId(1)).create_int(42);
    let assoc = world.site(SiteId(1)).create_association();
    let rel = world
        .site(SiteId(1))
        .create_relation(assoc, "burst", counter1)
        .expect("relation");
    world.run_to_quiescence();
    let invitation = world
        .site(SiteId(1))
        .make_invitation(assoc, rel)
        .expect("invitation");

    // Five joins back-to-back, each waiting only for its own completion.
    let mut objs = vec![counter1];
    for sid in 2..=6u32 {
        let local = world.site(SiteId(sid)).create_int(0);
        world
            .site(SiteId(sid))
            .join(invitation, local)
            .expect("join");
        world.run_to_quiescence();
        objs.push(local);
    }
    for (i, obj) in objs.iter().enumerate() {
        let sid = SiteId(i as u32 + 1);
        assert_eq!(
            world
                .site(sid)
                .replication_graph(*obj)
                .expect("graph")
                .len(),
            6,
            "graph at {sid}"
        );
        assert_eq!(world.site(sid).read_int_committed(*obj), Some(42));
    }
    // One update fans out to all six members.
    let o6 = objs[5];
    world.site(SiteId(6)).execute(Box::new(Add(o6, 8)));
    world.run_to_quiescence();
    for (i, obj) in objs.iter().enumerate() {
        assert_eq!(
            world.site(SiteId(i as u32 + 1)).read_int_committed(*obj),
            Some(50)
        );
    }
}
