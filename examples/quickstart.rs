//! Quickstart: the paper's running example (Figs. 2 and 3).
//!
//! Two users share two account balances. One runs the `XferTrans`
//! transaction transferring between them; a `BalanceView` at the other site
//! first shows the tentative value "in red" (optimistic update
//! notification) and then "in black" once the transfer commits.
//!
//! Run with: `cargo run -p decaf-apps --example quickstart`

use decaf_core::{ObjectName, Transaction, TxnCtx, TxnError, UpdateNotification, View, ViewMode};
use decaf_net::sim::{LatencyModel, SimTime};
use decaf_vt::SiteId;
use decaf_workload::SimWorld;

/// The paper's Fig. 2: transfer `amount` from one balance to the other,
/// aborting (without retry) on overdraft.
struct XferTrans {
    from: ObjectName,
    to: ObjectName,
    amount: f64,
}

impl Transaction for XferTrans {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let a = ctx.read_real(self.from)?;
        if a - self.amount < 0.0 {
            return Err(TxnError::app("can't transfer more than balance"));
        }
        let b = ctx.read_real(self.to)?;
        ctx.write_real(self.from, a - self.amount)?;
        ctx.write_real(self.to, b + self.amount)?;
        Ok(())
    }

    fn handle_abort(&mut self, reason: &decaf_core::AbortReason) {
        println!("  !! transfer aborted: {reason}");
    }
}

/// The paper's Fig. 3: a balance display that renders tentatively in red
/// and committed in black.
struct BalanceView {
    label: &'static str,
    balance: ObjectName,
}

impl View for BalanceView {
    fn update(&mut self, n: &UpdateNotification<'_>) {
        if let Ok(v) = n.read_real(self.balance) {
            println!("  [{}] balance = {v:>8.2}   (red: tentative)", self.label);
        }
    }
    fn commit(&mut self) {
        println!("  [{}] last shown value COMMITTED (black)", self.label);
    }
}

fn main() {
    println!("DECAF quickstart: two sites, 40 ms network latency\n");
    let mut world = SimWorld::new(2, LatencyModel::uniform(SimTime::from_millis(40)));

    // Each site holds replicas of two account balances.
    let account_a = world.wire_int(0); // placeholder ints not used; reals below
    let _ = account_a;
    // Reals: create + wire manually.
    let a1 = world.site(SiteId(1)).create_real(500.0);
    let a2 = world.site(SiteId(2)).create_real(500.0);
    let b1 = world.site(SiteId(1)).create_real(100.0);
    let b2 = world.site(SiteId(2)).create_real(100.0);
    {
        let mut iter = world.sites.values_mut();
        let s1 = iter.next().expect("site 1");
        let s2 = iter.next().expect("site 2");
        decaf_core::wiring::wire_pair(s1, a1, s2, a2);
        decaf_core::wiring::wire_pair(s1, b1, s2, b2);
    }

    // The remote user (site 1) watches account B optimistically.
    world.site(SiteId(1)).attach_view(
        Box::new(BalanceView {
            label: "site1 viewer",
            balance: b1,
        }),
        &[b1],
        ViewMode::Optimistic,
    );

    println!("site 2 transfers 150.00 from A to B:");
    world.site(SiteId(2)).execute(Box::new(XferTrans {
        from: a2,
        to: b2,
        amount: 150.0,
    }));
    world.run_to_quiescence();

    println!("\nfinal committed state:");
    for (site, a, b) in [(SiteId(1), a1, b1), (SiteId(2), a2, b2)] {
        println!(
            "  {site}: A = {:?}, B = {:?}",
            world.site(site).read_real_committed(a).expect("committed"),
            world.site(site).read_real_committed(b).expect("committed"),
        );
    }

    println!("\nsite 2 now tries to transfer 10,000.00 (overdraft):");
    world.site(SiteId(2)).execute(Box::new(XferTrans {
        from: a2,
        to: b2,
        amount: 10_000.0,
    }));
    world.run_to_quiescence();
    println!(
        "  state unchanged: A = {:?} at both sites",
        world
            .site(SiteId(1))
            .read_real_committed(a1)
            .expect("committed"),
    );

    let s1 = world.site(SiteId(1)).stats();
    println!("\nsite 1 stats: {s1}");
}
