//! Multi-user chat with dynamic collaboration establishment (§2.6, §3.3).
//!
//! A chat room is a replicated list of messages. The host creates the room,
//! publishes an invitation through an association object, and other users
//! join mid-session — adopting the full backlog — and later leave. A view
//! on the association object announces membership changes "in exactly the
//! same way as changes in values of data objects".
//!
//! Run with: `cargo run -p decaf-apps --example chat_session`

use decaf_core::{
    Blueprint, EngineEvent, ObjectName, Transaction, TxnCtx, TxnError, UpdateNotification, View,
    ViewMode,
};
use decaf_net::sim::{LatencyModel, SimTime};
use decaf_vt::SiteId;
use decaf_workload::SimWorld;

struct Say {
    room: ObjectName,
    who: &'static str,
    text: &'static str,
}

impl Transaction for Say {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.list_push(
            self.room,
            Blueprint::Tuple(vec![
                ("who".into(), Blueprint::str(self.who)),
                ("text".into(), Blueprint::str(self.text)),
            ]),
        )?;
        Ok(())
    }
}

/// Announces membership changes from the association object.
struct MembershipBanner {
    assoc: ObjectName,
}

impl View for MembershipBanner {
    fn update(&mut self, n: &UpdateNotification<'_>) {
        if let Ok(rels) = n.read_assoc(self.assoc) {
            for rel in rels {
                println!(
                    "  ** room '{}' now has {} member(s)",
                    rel.description,
                    rel.members.len()
                );
            }
        }
    }
}

fn transcript(world: &mut SimWorld, site: SiteId, room: ObjectName) -> Vec<String> {
    let msgs = world.site(site).list_children_current(room);
    msgs.into_iter()
        .map(|m| {
            let fields = world.site(site).tuple_children_current(m);
            let mut get = |key: &str| {
                fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, c)| world.site(site).read_str_committed(*c))
                    .unwrap_or_default()
            };
            format!("<{}> {}", get("who"), get("text"))
        })
        .collect()
}

fn main() {
    println!("Chat session with dynamic joins: 3 users, 50 ms latency\n");
    let mut world = SimWorld::new(3, LatencyModel::uniform(SimTime::from_millis(50)));

    // The host (site 1) creates the room and publishes an invitation.
    let room1 = world.site(SiteId(1)).create_list();
    let assoc = world.site(SiteId(1)).create_association();
    let rel = world
        .site(SiteId(1))
        .create_relation(assoc, "rust-chat", room1)
        .expect("create relation");
    world.site(SiteId(1)).attach_view(
        Box::new(MembershipBanner { assoc }),
        &[assoc],
        ViewMode::Pessimistic,
    );
    world.run_to_quiescence();
    let invitation = world
        .site(SiteId(1))
        .make_invitation(assoc, rel)
        .expect("make invitation");

    world.site(SiteId(1)).execute(Box::new(Say {
        room: room1,
        who: "host",
        text: "welcome to the room",
    }));
    world.run_to_quiescence();

    // Bob imports the invitation and joins; he adopts the backlog.
    println!("\nbob joins:");
    let room2 = world.site(SiteId(2)).create_list();
    world
        .site(SiteId(2))
        .join(invitation, room2)
        .expect("join starts");
    world.run_to_quiescence();
    let joined = world.log.iter().any(|e| {
        matches!(e.event, EngineEvent::JoinCompleted { ok: true, .. }) && e.site == SiteId(2)
    });
    assert!(joined, "bob's join must complete");
    println!(
        "  bob's backlog: {:?}",
        transcript(&mut world, SiteId(2), room2)
    );

    world.site(SiteId(2)).execute(Box::new(Say {
        room: room2,
        who: "bob",
        text: "hi all!",
    }));
    world.run_to_quiescence();

    // Carol joins through the same invitation.
    println!("\ncarol joins:");
    let room3 = world.site(SiteId(3)).create_list();
    world
        .site(SiteId(3))
        .join(invitation, room3)
        .expect("join starts");
    world.run_to_quiescence();
    world.site(SiteId(3)).execute(Box::new(Say {
        room: room3,
        who: "carol",
        text: "made it!",
    }));
    world.run_to_quiescence();

    println!("\ntranscripts (all identical):");
    for (who, site, room) in [
        ("host", SiteId(1), room1),
        ("bob", SiteId(2), room2),
        ("carol", SiteId(3), room3),
    ] {
        println!("  {who}: {:?}", transcript(&mut world, site, room));
    }
    let t1 = transcript(&mut world, SiteId(1), room1);
    let t2 = transcript(&mut world, SiteId(2), room2);
    let t3 = transcript(&mut world, SiteId(3), room3);
    assert_eq!(t1, t2);
    assert_eq!(t2, t3);

    // Bob leaves; messages no longer reach him.
    println!("\nbob leaves; host keeps chatting:");
    world.site(SiteId(2)).leave(room2).expect("leave");
    world.run_to_quiescence();
    world.site(SiteId(1)).execute(Box::new(Say {
        room: room1,
        who: "host",
        text: "bye bob",
    }));
    world.run_to_quiescence();
    println!(
        "  host sees {} messages; bob still {}",
        transcript(&mut world, SiteId(1), room1).len(),
        transcript(&mut world, SiteId(2), room2).len()
    );
}
