//! Collaborative form filling: the paper's motivating application.
//!
//! "Several groupware applications that allow an insurance agent to help
//! clients understand insurance products via data visualization and to fill
//! out insurance forms" were built on DECAF (§5.2.1). Here an agent and a
//! client edit an insurance form — a replicated tuple of fields — while
//!
//! * the client's GUI watches **optimistically** (instant feedback), and
//! * the agent's audit trail watches **pessimistically**: it records every
//!   committed form state, losslessly and in order, never seeing tentative
//!   values.
//!
//! Run with: `cargo run -p decaf-apps --example insurance_form`

use decaf_core::{
    Blueprint, ObjectName, Transaction, TxnCtx, TxnError, UpdateNotification, View, ViewMode,
};
use decaf_net::sim::{LatencyModel, SimTime};
use decaf_vt::SiteId;
use decaf_workload::SimWorld;

/// Sets a string field of the form.
struct FillField {
    form: ObjectName,
    field: &'static str,
    value: &'static str,
}

impl Transaction for FillField {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        match ctx.tuple_get(self.form, self.field)? {
            Some(existing) => ctx.write_str(existing, self.value),
            None => {
                ctx.tuple_put(self.form, self.field, Blueprint::str(self.value))?;
                Ok(())
            }
        }
    }
}

/// Computes the premium from the coverage field (reads one field, writes
/// another — a read-write transaction that can conflict and retry).
struct Reprice {
    form: ObjectName,
}

impl Transaction for Reprice {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let coverage = match ctx.tuple_get(self.form, "coverage")? {
            Some(c) => ctx.read_str(c)?,
            None => return Err(TxnError::app("no coverage chosen yet")),
        };
        let premium = match coverage.as_str() {
            "basic" => "120.00",
            "full" => "340.00",
            other => return Err(TxnError::app(format!("unknown coverage {other}"))),
        };
        match ctx.tuple_get(self.form, "premium")? {
            Some(p) => ctx.write_str(p, premium),
            None => {
                ctx.tuple_put(self.form, "premium", Blueprint::str(premium))?;
                Ok(())
            }
        }
    }
}

/// The client's screen: optimistic, immediate.
struct ClientScreen {
    form: ObjectName,
}

impl View for ClientScreen {
    fn update(&mut self, n: &UpdateNotification<'_>) {
        let fields = n.read_tuple(self.form).unwrap_or_default();
        let mut parts = Vec::new();
        for (k, child) in fields {
            if let Ok(v) = n.read_str(child) {
                parts.push(format!("{k}={v}"));
            }
        }
        println!("  [client screen]  {}", parts.join("  "));
    }
    fn commit(&mut self) {
        println!("  [client screen]  (all shown values committed)");
    }
}

/// The agent's audit log: pessimistic, lossless, committed-only.
struct AuditTrail {
    form: ObjectName,
    entries: u64,
}

impl View for AuditTrail {
    fn update(&mut self, n: &UpdateNotification<'_>) {
        self.entries += 1;
        let fields = n.read_tuple(self.form).unwrap_or_default();
        let mut parts = Vec::new();
        for (k, child) in fields {
            if let Ok(v) = n.read_str(child) {
                parts.push(format!("{k}={v}"));
            }
        }
        println!("  [audit #{:02}]      {}", self.entries, parts.join("  "));
    }
}

fn main() {
    println!("Insurance form: agent (site 1) + client (site 2), 30 ms latency\n");
    let mut world = SimWorld::new(2, LatencyModel::uniform(SimTime::from_millis(30)));
    let form1 = world.site(SiteId(1)).create_tuple();
    let form2 = world.site(SiteId(2)).create_tuple();
    {
        let mut iter = world.sites.values_mut();
        let s1 = iter.next().expect("site 1");
        let s2 = iter.next().expect("site 2");
        decaf_core::wiring::wire_pair(s1, form1, s2, form2);
    }

    world.site(SiteId(2)).attach_view(
        Box::new(ClientScreen { form: form2 }),
        &[form2],
        ViewMode::Optimistic,
    );
    world.site(SiteId(1)).attach_view(
        Box::new(AuditTrail {
            form: form1,
            entries: 0,
        }),
        &[form1],
        ViewMode::Pessimistic,
    );

    println!("client fills in their name:");
    world.site(SiteId(2)).execute(Box::new(FillField {
        form: form2,
        field: "name",
        value: "Jane Doe",
    }));
    world.run_to_quiescence();

    println!("\nagent selects full coverage and reprices (one atomic flow):");
    world.site(SiteId(1)).execute(Box::new(FillField {
        form: form1,
        field: "coverage",
        value: "full",
    }));
    world
        .site(SiteId(1))
        .execute(Box::new(Reprice { form: form1 }));
    world.run_to_quiescence();

    println!("\nclient downgrades to basic; agent reprices concurrently:");
    world.site(SiteId(2)).execute(Box::new(FillField {
        form: form2,
        field: "coverage",
        value: "basic",
    }));
    world
        .site(SiteId(1))
        .execute(Box::new(Reprice { form: form1 }));
    world.run_to_quiescence();

    println!("\nfinal committed form at both sites:");
    for (label, site, form) in [("agent", SiteId(1), form1), ("client", SiteId(2), form2)] {
        let fields = world.site(site).tuple_children_current(form);
        let mut parts = Vec::new();
        for (k, child) in fields {
            if let Some(v) = world.site(site).read_str_committed(child) {
                parts.push(format!("{k}={v}"));
            }
        }
        println!("  {label}: {}", parts.join("  "));
    }
    let totals = world.total_stats();
    println!("\ntotals: {totals}");
}
