//! Collaborative whiteboard: the paper's blind-write workload (§5.1.2).
//!
//! Three users draw strokes concurrently onto a shared whiteboard — a
//! replicated list of stroke tuples. All operations are blind appends, so
//! "concurrency control tests never fail": no rollbacks, ever. Optimistic
//! views render instantly; straggling strokes may be *lost updates* for the
//! view (they are still in the committed board).
//!
//! Run with: `cargo run -p decaf-apps --example whiteboard`

use decaf_core::{
    Blueprint, ObjectName, Site, Transaction, TxnCtx, TxnError, UpdateNotification, View, ViewMode,
};
use decaf_net::sim::{LatencyModel, SimTime};
use decaf_vt::SiteId;
use decaf_workload::{ArrivalProcess, SimWorld, WorldStep};

/// Draw one stroke: append a `{color, x, y}` tuple to the board.
struct DrawStroke {
    board: ObjectName,
    color: &'static str,
    x: i64,
    y: i64,
}

impl Transaction for DrawStroke {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        ctx.list_push(
            self.board,
            Blueprint::Tuple(vec![
                ("color".into(), Blueprint::str(self.color)),
                ("x".into(), Blueprint::Int(self.x)),
                ("y".into(), Blueprint::Int(self.y)),
            ]),
        )?;
        Ok(())
    }
}

/// A renderer that just counts what it would draw.
struct BoardView {
    user: &'static str,
    board: ObjectName,
    renders: u64,
}

impl View for BoardView {
    fn update(&mut self, n: &UpdateNotification<'_>) {
        self.renders += 1;
        if let Ok(strokes) = n.read_list(self.board) {
            if self.renders.is_multiple_of(25) {
                println!(
                    "  [{}] re-render #{} with {} strokes",
                    self.user,
                    self.renders,
                    strokes.len()
                );
            }
        }
    }
}

const USERS: [(&str, &str); 3] = [("ann", "red"), ("bob", "blue"), ("cid", "green")];

fn main() {
    println!("Collaborative whiteboard: 3 users, 60 ms latency, 30 s of drawing\n");
    let mut world = SimWorld::new(3, LatencyModel::uniform(SimTime::from_millis(60)));

    // One board replica per site, wired together.
    let boards: Vec<ObjectName> = world.sites.values_mut().map(Site::create_list).collect();
    {
        let mut parts: Vec<(&mut Site, ObjectName)> = world
            .sites
            .values_mut()
            .zip(boards.iter().copied())
            .collect();
        decaf_core::wiring::wire_replicas(&mut parts);
    }
    for (i, (user, _)) in USERS.iter().enumerate() {
        let site = SiteId(i as u32 + 1);
        let board = boards[i];
        world.site(site).attach_view(
            Box::new(BoardView {
                user,
                board,
                renders: 0,
            }),
            &[board],
            ViewMode::Optimistic,
        );
    }

    // Each user draws with Poisson-distributed gestures, ~2 strokes/s.
    let mut arrivals: Vec<ArrivalProcess> = (0..3)
        .map(|i| ArrivalProcess::poisson(2.0, 7 + i as u64))
        .collect();
    for i in 0..3u32 {
        let d = arrivals[i as usize].next_delay();
        world.set_timer(SiteId(i + 1), d, 0);
    }

    let deadline = SimTime::from_secs(30);
    let mut strokes = 0i64;
    while let Some(step) = world.step() {
        if world.now() > deadline {
            break;
        }
        if let WorldStep::Timer { site, .. } = step {
            let idx = (site.0 - 1) as usize;
            strokes += 1;
            let color = USERS[idx].1;
            world.site(site).execute(Box::new(DrawStroke {
                board: boards[idx],
                color,
                x: (strokes * 17) % 800,
                y: (strokes * 31) % 600,
            }));
            let d = arrivals[idx].next_delay();
            world.set_timer(site, d, 0);
        }
    }
    world.run_to_quiescence();

    println!("\nafter quiescence:");
    for (i, (user, _)) in USERS.iter().enumerate() {
        let site = SiteId(i as u32 + 1);
        let count = world.site(site).list_children_current(boards[i]).len();
        println!("  {user}'s board shows {count} strokes");
    }
    let total = world.total_stats();
    println!("\ntotals: {total}");
    println!(
        "blind writes: {} rollbacks (the paper predicts zero), {} lost view updates",
        total.txns_aborted_conflict, total.lost_updates
    );
    assert_eq!(total.txns_aborted_conflict, 0);
}
