//! Client-failure handling (§3.4): the primary site of a collaboration
//! crashes mid-session; the survivors resolve in-doubt transactions,
//! repair the replication graph by consensus, and continue under a new
//! primary — "as common in systems such as ISIS", failures are presented
//! as fail-stop by the communication layer (here: the simulator).
//!
//! Run with: `cargo run -p decaf-apps --example failure_recovery`

use decaf_core::{ObjectName, Transaction, TxnCtx, TxnError};
use decaf_net::sim::{LatencyModel, SimTime};
use decaf_vt::SiteId;
use decaf_workload::SimWorld;

struct Add(ObjectName, i64);
impl Transaction for Add {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + self.1)
    }
}

fn main() {
    println!("Failure recovery: 3 sites, the primary crashes, 25 ms latency\n");
    let mut world = SimWorld::new(3, LatencyModel::uniform(SimTime::from_millis(25)));
    let objs = world.wire_int(0);

    println!(
        "initial primary of the shared counter: {}",
        world
            .site(SiteId(2))
            .primary_of(objs[1])
            .expect("primary")
            .site
    );

    // Normal operation.
    world.site(SiteId(2)).execute(Box::new(Add(objs[1], 10)));
    world.run_to_quiescence();
    println!(
        "after one committed update, every site reads {:?}",
        world.site(SiteId(3)).read_int_committed(objs[2])
    );

    // Site 3 starts a transaction whose confirmation the dying primary will
    // never send.
    world.site(SiteId(3)).execute(Box::new(Add(objs[2], 5)));
    println!("\nsite 3 has an in-flight transaction... and the primary (site 1) crashes!");
    world.fail_site(SiteId(1));
    world.run_to_quiescence();

    println!(
        "\nafter recovery, the new primary is {}",
        world
            .site(SiteId(2))
            .primary_of(objs[1])
            .expect("primary")
            .site
    );
    println!(
        "surviving replicas agree: site2 = {:?}, site3 = {:?}",
        world.site(SiteId(2)).read_int_committed(objs[1]),
        world.site(SiteId(3)).read_int_committed(objs[2]),
    );
    assert_eq!(
        world.site(SiteId(2)).read_int_committed(objs[1]),
        world.site(SiteId(3)).read_int_committed(objs[2]),
    );
    assert_eq!(
        world
            .site(SiteId(2))
            .replication_graph(objs[1])
            .expect("graph")
            .len(),
        2,
        "graphs repaired to the two survivors"
    );

    // Work continues under the new primary.
    println!("\nsurvivors keep collaborating:");
    world.site(SiteId(3)).execute(Box::new(Add(objs[2], 100)));
    world.run_to_quiescence();
    println!(
        "site2 = {:?}, site3 = {:?}",
        world.site(SiteId(2)).read_int_committed(objs[1]),
        world.site(SiteId(3)).read_int_committed(objs[2]),
    );
    assert_eq!(
        world.site(SiteId(2)).read_int_committed(objs[1]),
        world.site(SiteId(3)).read_int_committed(objs[2]),
    );
}
