//! Persistence and recovery (§5.3): checkpoint a collaborative session to
//! JSON, "crash", restore, and keep collaborating — then demonstrate the
//! §3.4 rejoin-as-new-member path when the survivors repaired the crashed
//! site away.
//!
//! Run with: `cargo run -p decaf-apps --example checkpoint_restore`

use decaf_core::{wiring, Checkpoint, ObjectName, Site, Transaction, TxnCtx, TxnError};
use decaf_vt::SiteId;

struct Add(ObjectName, i64);
impl Transaction for Add {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + self.1)
    }
}

fn main() {
    println!("Checkpoint & restore demo\n");
    let mut a = Site::new(SiteId(1));
    let mut b = Site::new(SiteId(2));
    let oa = a.create_int(0);
    let ob = b.create_int(0);
    wiring::wire_pair(&mut a, oa, &mut b, ob);

    for _ in 0..3 {
        a.execute(Box::new(Add(oa, 10)));
        wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    }
    println!(
        "after three updates: site1 = {:?}, site2 = {:?}",
        a.read_int_committed(oa),
        b.read_int_committed(ob)
    );

    // Site 2 checkpoints to JSON — the durable state a persistence store
    // would write.
    let cp = b.checkpoint().expect("quiescent");
    let json = serde_json::to_string_pretty(&cp).expect("serializable");
    println!(
        "\nsite 2 checkpointed: {} bytes of JSON ({} objects)",
        json.len(),
        cp.object_count(),
    );
    println!("checkpoint head:\n{}", &json[..json.len().min(300)]);

    // Crash...
    drop(b);
    println!("\nsite 2 'crashed'. restoring from the checkpoint...");
    let parsed: Checkpoint = serde_json::from_str(&json).expect("deserializable");
    let mut b = Site::restore(parsed);
    println!(
        "restored site 2 reads {:?} with a {}-member replication graph",
        b.read_int_committed(ob),
        b.replication_graph(ob).expect("graph").len()
    );

    // Collaboration resumes transparently (the survivors never repaired it
    // away, so its membership is intact).
    b.execute(Box::new(Add(ob, 12)));
    wiring::run_to_quiescence(&mut [&mut a, &mut b]);
    println!(
        "\nafter a post-restore update: site1 = {:?}, site2 = {:?}",
        a.read_int_committed(oa),
        b.read_int_committed(ob)
    );
    assert_eq!(a.read_int_committed(oa), Some(42));
    assert_eq!(b.read_int_committed(ob), Some(42));
    println!("\nboth replicas agree at 42 — recovery complete.");
}
