//! The same DECAF engine on a **real multi-threaded transport**: one OS
//! thread per site, crossbeam channels with injected delay in between —
//! the way the paper's Java prototype ran one process per user.
//!
//! Each user increments a shared counter 25 times; the sans-I/O engine
//! serializes the increments through the primary copy exactly as it does
//! on the simulator, so the committed total is exact.
//!
//! Run with: `cargo run -p decaf-apps --example threaded_counters`

use std::time::Duration;

use decaf_core::{wiring, Envelope, ObjectName, Site, Transaction, TxnCtx, TxnError};
use decaf_net::threaded::ThreadedNet;
use decaf_net::TransportEvent;
use decaf_vt::SiteId;

struct Incr(ObjectName);
impl Transaction for Incr {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + 1)
    }
}

const USERS: u32 = 3;
const INCREMENTS_EACH: i64 = 25;

fn main() {
    println!(
        "Threaded counters: {USERS} threads, 2 ms link delay, {INCREMENTS_EACH} increments each\n"
    );
    let mut net: ThreadedNet<Envelope> = ThreadedNet::new(USERS as usize, Duration::from_millis(2));

    // Build and wire the sites up front, then move each onto its thread.
    let mut sites: Vec<Site> = (0..USERS).map(|i| Site::new(SiteId(i))).collect();
    let objs: Vec<ObjectName> = sites.iter_mut().map(|s| s.create_int(0)).collect();
    {
        let mut parts: Vec<(&mut Site, ObjectName)> =
            sites.iter_mut().zip(objs.iter().copied()).collect();
        wiring::wire_replicas(&mut parts);
    }

    let mut handles = Vec::new();
    for (mut site, obj) in sites.into_iter().zip(objs) {
        let endpoint = net.endpoint(site.id());
        handles.push(std::thread::spawn(move || {
            let mut done = 0i64;
            let mut last: Option<decaf_core::TxnHandle> = None;
            let mut idle = 0u32;
            loop {
                // Submit work, paced on the previous gesture's outcome.
                let prior_done = last.map(|h| site.txn_outcome(h).is_some()).unwrap_or(true);
                if done < INCREMENTS_EACH && prior_done {
                    last = Some(site.execute(Box::new(Incr(obj))));
                    done += 1;
                }
                // Ship outgoing protocol messages.
                for env in site.drain_outbox() {
                    endpoint.send(env.to, env);
                }
                // Handle everything that arrived.
                let mut got = false;
                while let Some(event) = endpoint.try_recv() {
                    got = true;
                    match event {
                        TransportEvent::Message { msg, .. } => site.handle_message(msg),
                        TransportEvent::SiteFailed { failed } => site.notify_site_failed(failed),
                    }
                }
                for env in site.drain_outbox() {
                    endpoint.send(env.to, env);
                }
                if done >= INCREMENTS_EACH && !got && site.is_quiescent() {
                    idle += 1;
                    if idle > 200 {
                        break; // quiet long enough: everyone is done
                    }
                    std::thread::sleep(Duration::from_millis(2));
                } else {
                    idle = 0;
                    std::thread::sleep(Duration::from_micros(300));
                }
            }
            let value = site.read_int_committed(obj);
            let stats = site.stats();
            (site.id(), value, stats)
        }));
    }

    let mut results = Vec::new();
    for h in handles {
        results.push(h.join().expect("site thread panicked"));
    }
    net.shutdown();

    let expected = USERS as i64 * INCREMENTS_EACH;
    println!("expected committed total: {expected}\n");
    for (id, value, stats) in &results {
        println!("  {id}: committed = {value:?}   ({stats})");
        assert_eq!(*value, Some(expected), "replica diverged");
    }
    println!("\nall {} replicas agree at {}", results.len(), expected);
}
