//! The DECAF engine on the **real TCP mesh**: three sites, each with its
//! own [`decaf_net::tcp::TcpMesh`] bound to a loopback socket, exchanging
//! length-prefixed CRC-checked frames over actual kernel TCP connections.
//!
//! This is the single-process rehearsal of the paper's deployment shape
//! (one process per user, §5.2): the same wiring, codec, heartbeats and
//! failure detector that the `decaf-site` daemon uses across OS processes,
//! but with all three sites driven by threads here so the example is
//! self-contained. For the true multi-process version, see the
//! `decaf-site` binary and the "Running sites over TCP" section of the
//! README, plus `tests/tcp_transport.rs` which kills one of the processes.
//!
//! Run with: `cargo run -p decaf-apps --example tcp_mesh`

use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

use decaf_core::{wiring, Envelope, ObjectName, Site, Transaction, TxnCtx, TxnError};
use decaf_net::tcp::{TcpConfig, TcpMesh};
use decaf_net::{TransportEndpoint, TransportEvent};
use decaf_vt::SiteId;

struct Incr(ObjectName);
impl Transaction for Incr {
    fn execute(&mut self, ctx: &mut TxnCtx<'_>) -> Result<(), TxnError> {
        let v = ctx.read_int(self.0)?;
        ctx.write_int(self.0, v + 1)
    }
}

const USERS: u32 = 3;
const INCREMENTS_EACH: i64 = 10;

/// Grabs a free loopback port from the kernel. The listener is dropped
/// before the mesh rebinds it — fine for an example, the window is tiny.
fn reserve_port() -> SocketAddr {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    l.local_addr().expect("local addr")
}

fn main() {
    println!(
        "TCP mesh counters: {USERS} sites on loopback sockets, {INCREMENTS_EACH} increments each\n"
    );

    // Reserve one listen address per site so every config can name every
    // peer before any mesh starts (the peer table a deployment would read
    // from configuration).
    let addrs: Vec<SocketAddr> = (0..USERS).map(|_| reserve_port()).collect();

    // Build and wire the sites up front, then move each onto its thread.
    let mut sites: Vec<Site> = (1..=USERS).map(|i| Site::new(SiteId(i))).collect();
    let objs: Vec<ObjectName> = sites.iter_mut().map(|s| s.create_int(0)).collect();
    {
        let mut parts: Vec<(&mut Site, ObjectName)> =
            sites.iter_mut().zip(objs.iter().copied()).collect();
        wiring::wire_replicas(&mut parts);
    }

    let mut handles = Vec::new();
    for (idx, (mut site, obj)) in sites.into_iter().zip(objs).enumerate() {
        let mut cfg = TcpConfig::new(site.id(), addrs[idx]);
        for (pidx, &addr) in addrs.iter().enumerate() {
            if pidx != idx {
                cfg = cfg.peer(SiteId(pidx as u32 + 1), addr);
            }
        }
        handles.push(std::thread::spawn(move || {
            let mut mesh = TcpMesh::start(cfg).expect("start mesh");
            let endpoint = mesh.endpoint();
            let mut done = 0i64;
            let mut last: Option<decaf_core::TxnHandle> = None;
            let mut idle = 0u32;
            loop {
                // Submit work, paced on the previous gesture's outcome.
                let prior_done = last.map(|h| site.txn_outcome(h).is_some()).unwrap_or(true);
                if done < INCREMENTS_EACH && prior_done {
                    last = Some(site.execute(Box::new(Incr(obj))));
                    done += 1;
                }
                // Engine outbox -> sockets, sockets -> engine.
                for env in site.drain_outbox() {
                    endpoint.send(env.to, env);
                }
                let mut got = false;
                if let Some(first) = endpoint.recv_timeout(Duration::from_millis(1)) {
                    got = true;
                    dispatch(&mut site, first);
                    while let Some(more) = endpoint.try_recv() {
                        dispatch(&mut site, more);
                    }
                }
                for env in site.drain_outbox() {
                    endpoint.send(env.to, env);
                }
                let _ = site.drain_events();

                // Quit once everything we can observe has settled.
                let target = i64::from(USERS) * INCREMENTS_EACH;
                let committed = site.read_int_committed(obj).unwrap_or(0);
                if done >= INCREMENTS_EACH && committed >= target && !got && site.is_quiescent() {
                    idle += 1;
                    // Linger so slower peers can still converge off us.
                    if idle > 500 {
                        break;
                    }
                } else {
                    idle = 0;
                }
            }
            let value = site.read_int_committed(obj);
            let stats = mesh.stats();
            mesh.shutdown();
            (site.id(), value, stats)
        }));
    }

    println!("{:>6} {:>10}  transport", "site", "counter");
    let mut values = Vec::new();
    for h in handles {
        let (id, value, stats) = h.join().expect("site thread panicked");
        println!("{:>6} {:>10}  {stats}", id.0, value.unwrap_or(-1));
        values.push(value);
    }
    let expect = Some(i64::from(USERS) * INCREMENTS_EACH);
    assert!(
        values.iter().all(|v| *v == expect),
        "all replicas must commit {expect:?}: {values:?}"
    );
    println!("\nAll {USERS} replicas converged over real TCP sockets.");
}

fn dispatch(site: &mut Site, event: TransportEvent<Envelope>) {
    match event {
        TransportEvent::Message { msg, .. } => site.handle_message(msg),
        TransportEvent::SiteFailed { failed } => site.notify_site_failed(failed),
    }
}
